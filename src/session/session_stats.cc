#include "session/session_stats.h"

#include <algorithm>

#include "trace/stats.h"

namespace wadc::session {

void SessionStats::add(const SessionRecord& record) {
  sessions_.push_back(record);
  makespan_seconds_ = std::max(makespan_seconds_, record.end_seconds);
  images_total_ += record.images;

  if (record.shed) {
    ++shed_;
    return;  // never queued, never ran: nothing else to fold
  }
  ++admitted_;
  if (record.deferred) ++deferred_;
  if (record.degraded) ++degraded_;
  const double queue = record.queue_seconds();
  queue_sum_ += queue;
  queue_max_ = std::max(queue_max_, queue);

  if (!record.completed) return;  // aborted: admitted, but no response metrics
  ++completed_;
  const double response = record.response_seconds();
  response_sum_ += response;
  responses_.push_back(response);
  const double x = record.throughput();
  throughput_sum_ += x;
  throughput_sum_sq_ += x * x;
}

double SessionStats::shed_fraction() const {
  if (sessions_.empty()) return 0.0;
  return static_cast<double>(shed_) / static_cast<double>(sessions_.size());
}

double SessionStats::mean_response_seconds() const {
  return completed_ > 0 ? response_sum_ / completed_ : 0.0;
}

double SessionStats::p95_response_seconds() const {
  if (responses_.empty()) return 0.0;
  return trace::percentile_of(responses_, 95.0);
}

double SessionStats::mean_queue_seconds() const {
  return admitted_ > 0 ? queue_sum_ / admitted_ : 0.0;
}

double SessionStats::jain_fairness() const {
  if (completed_ == 0 || throughput_sum_sq_ <= 0) return 1.0;
  return (throughput_sum_ * throughput_sum_) /
         (completed_ * throughput_sum_sq_);
}

double SessionStats::aggregate_throughput() const {
  if (makespan_seconds_ <= 0) return 0.0;
  return static_cast<double>(images_total_) / makespan_seconds_;
}

double SessionStats::goodput_per_hour() const {
  if (makespan_seconds_ <= 0) return 0.0;
  return completed_ * 3600.0 / makespan_seconds_;
}

}  // namespace wadc::session
