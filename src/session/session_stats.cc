#include "session/session_stats.h"

#include <algorithm>

#include "trace/stats.h"

namespace wadc::session {
namespace {

// Response times of completed sessions.
std::vector<double> completed_responses(const SessionStats& stats) {
  std::vector<double> xs;
  xs.reserve(stats.sessions.size());
  for (const SessionRecord& s : stats.sessions) {
    if (s.completed) xs.push_back(s.response_seconds());
  }
  return xs;
}

}  // namespace

int SessionStats::completed_count() const {
  return static_cast<int>(
      std::count_if(sessions.begin(), sessions.end(),
                    [](const SessionRecord& s) { return s.completed; }));
}

double SessionStats::mean_response_seconds() const {
  const std::vector<double> xs = completed_responses(*this);
  return xs.empty() ? 0.0 : trace::mean_of(xs);
}

double SessionStats::p95_response_seconds() const {
  std::vector<double> xs = completed_responses(*this);
  return xs.empty() ? 0.0 : trace::percentile_of(std::move(xs), 95.0);
}

double SessionStats::mean_queue_seconds() const {
  if (sessions.empty()) return 0.0;
  std::vector<double> xs;
  xs.reserve(sessions.size());
  for (const SessionRecord& s : sessions) xs.push_back(s.queue_seconds());
  return trace::mean_of(xs);
}

double SessionStats::max_queue_seconds() const {
  double max = 0;
  for (const SessionRecord& s : sessions) {
    max = std::max(max, s.queue_seconds());
  }
  return max;
}

double SessionStats::jain_fairness() const {
  double sum = 0;
  double sum_sq = 0;
  int n = 0;
  for (const SessionRecord& s : sessions) {
    if (!s.completed) continue;
    const double x = s.throughput();
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n == 0 || sum_sq == 0) return 1.0;
  return (sum * sum) / (n * sum_sq);
}

double SessionStats::aggregate_throughput() const {
  if (makespan_seconds <= 0) return 0.0;
  int images = 0;
  for (const SessionRecord& s : sessions) images += s.images;
  return images / makespan_seconds;
}

}  // namespace wadc::session
