// Session workload specifications for the multi-client session runtime
// (wadc_run --sessions-spec=FILE / --num-clients=N).
//
// Line-oriented text format; '#' starts a comment, blank lines are ignored.
// Times are simulated seconds. Exactly one arrival mode must be given:
//
//   session <arrival_seconds>                # one explicit query session
//   open <count> <rate_per_hour>             # Poisson open-loop arrivals
//   closed <clients> <queries> <think_s>     # closed loop: each client runs
//                                            # <queries> sessions back to
//                                            # back with <think_s> think time
//   admission unbounded                      # default: admit immediately
//   admission cap <max_concurrent>           # FIFO queue beyond the cap
//   admission bandwidth <min_bw> [recheck_s] # defer while the measured
//                                            # client-link bandwidth (B/s)
//                                            # is below <min_bw>
//
// Parse errors throw std::runtime_error with the offending line number;
// wadc_run turns that into exit code 2, like the fault-spec path.
#pragma once

#include <string>
#include <vector>

namespace wadc::session {

// How the admission controller treats an arriving session.
enum class AdmissionPolicy {
  kUnbounded,       // start every session the moment it arrives
  kFixedCap,        // at most max_concurrent running; FIFO queue beyond
  kBandwidthAware,  // defer while measured client-link bandwidth < threshold
};

const char* admission_policy_name(AdmissionPolicy policy);

struct AdmissionParams {
  AdmissionPolicy policy = AdmissionPolicy::kUnbounded;
  int max_concurrent = 4;        // kFixedCap
  double min_bandwidth = 0;      // bytes/second (kBandwidthAware)
  double recheck_seconds = 30;   // kBandwidthAware re-evaluation period
};

// How query sessions arrive.
enum class ArrivalMode {
  kExplicit,    // arrival times listed in the spec
  kOpenLoop,    // seeded Poisson arrivals, fixed count
  kClosedLoop,  // N clients, each issuing its next query one think time
                // after the previous one completes
};

struct SessionSpec {
  ArrivalMode mode = ArrivalMode::kExplicit;

  std::vector<double> arrivals;  // kExplicit (seconds)

  int open_count = 0;  // kOpenLoop
  double open_rate_per_hour = 0;

  int clients = 0;  // kClosedLoop
  int queries_per_client = 0;
  double think_seconds = 0;

  AdmissionParams admission;

  // Sessions the spec will generate in total.
  int total_sessions() const;

  // Empty string if usable, else a description of the first problem found
  // (the SessionManager asserts this; wadc_run turns it into exit code 2).
  std::string validate() const;

  // N sessions all arriving at t=0, unbounded admission — the shape behind
  // wadc_run --num-clients.
  static SessionSpec concurrent_clients(int n);
};

// Parses the format above from a string.
SessionSpec parse_session_spec(const std::string& text);

// Reads and parses a file; throws std::runtime_error if unreadable.
SessionSpec load_session_spec_file(const std::string& path);

}  // namespace wadc::session
