// Session workload specifications for the multi-client session runtime
// (wadc_run --sessions-spec=FILE / --num-clients=N).
//
// Line-oriented text format; '#' starts a comment, blank lines are ignored.
// Times are simulated seconds. Exactly one arrival mode must be given:
//
//   session <arrival_seconds> [id=<n>] [deadline=<s>]
//                                            # one explicit query session;
//                                            # id must be unique, deadline
//                                            # overrides the default below
//   open <count> <rate_per_hour>             # Poisson open-loop arrivals
//   closed <clients> <queries> <think_s>     # closed loop: each client runs
//                                            # <queries> sessions back to
//                                            # back with <think_s> think time
//   admission unbounded                      # default: admit immediately
//   admission cap <max_concurrent>           # FIFO queue beyond the cap
//   admission bandwidth <min_bw> [recheck_s] # defer while the measured
//                                            # client-link bandwidth (B/s)
//                                            # is below <min_bw>; deferral
//                                            # is bounded (defer_cap below)
//   admission shed <max_concurrent> [max_queue]
//                                            # load shedding: queue at most
//                                            # max_queue (default 0) behind
//                                            # the cap, reject the rest
//   admission deadline <deadline_s>          # reject sessions whose
//                                            # predicted response exceeds
//                                            # their deadline (default
//                                            # <deadline_s>, overridable
//                                            # per session line)
//   admission degrade <max_concurrent>       # beyond the cap, admit but
//                                            # force the cheap one-shot
//                                            # engine mode
//   defer_cap <seconds>                      # bound on bandwidth-aware
//                                            # deferral (default 900)
//
// Parse errors throw std::runtime_error with the offending line number;
// wadc_run turns that into exit code 2, like the fault-spec path.
#pragma once

#include <string>
#include <vector>

namespace wadc::session {

// How the admission controller treats an arriving session. The first three
// are the original policies; the last three are the overload-control
// policies (docs/SESSIONS.md "Overload control").
enum class AdmissionPolicy {
  kUnbounded,       // start every session the moment it arrives
  kFixedCap,        // at most max_concurrent running; FIFO queue beyond
  kBandwidthAware,  // defer while measured client-link bandwidth < threshold
  kLoadShedding,    // cap + bounded queue; beyond both, shed (reject)
  kDeadlineAware,   // shed sessions predicted to miss their deadline
  kDegrading,       // beyond the cap, admit in degraded (one-shot) mode
};

const char* admission_policy_name(AdmissionPolicy policy);

struct AdmissionParams {
  AdmissionPolicy policy = AdmissionPolicy::kUnbounded;
  int max_concurrent = 4;        // kFixedCap / kLoadShedding / kDegrading
  double min_bandwidth = 0;      // bytes/second (kBandwidthAware)
  double recheck_seconds = 30;   // kBandwidthAware re-evaluation period
  // kBandwidthAware forward-progress bound: a deferred session is force-
  // admitted once it has waited this long, so congestion can delay but
  // never starve it (the recheck that fires at the bound admits it).
  double max_defer_seconds = 900;
  int max_queue = 0;             // kLoadShedding FIFO room behind the cap
  // kDeadlineAware default per-session response deadline, seconds. 0 means
  // "no deadline": sessions without an explicit per-session deadline are
  // always admitted.
  double deadline_seconds = 0;
};

// How query sessions arrive.
enum class ArrivalMode {
  kExplicit,    // arrival times listed in the spec
  kOpenLoop,    // seeded Poisson arrivals, fixed count
  kClosedLoop,  // N clients, each issuing its next query one think time
                // after the previous one completes
};

// One explicit `session` line: arrival time plus optional stable id and
// per-session deadline (0 = use AdmissionParams::deadline_seconds).
struct ExplicitArrival {
  double arrival_seconds = 0;
  int id = -1;                  // unique across the spec; -1 = line ordinal
  double deadline_seconds = 0;  // 0 = default
};

struct SessionSpec {
  ArrivalMode mode = ArrivalMode::kExplicit;

  std::vector<ExplicitArrival> arrivals;  // kExplicit

  int open_count = 0;  // kOpenLoop
  double open_rate_per_hour = 0;

  int clients = 0;  // kClosedLoop
  int queries_per_client = 0;
  double think_seconds = 0;

  AdmissionParams admission;

  // Sessions the spec will generate in total.
  int total_sessions() const;

  // Empty string if usable, else a description of the first problem found
  // (the SessionManager asserts this; wadc_run turns it into exit code 2).
  std::string validate() const;

  // N sessions all arriving at t=0, unbounded admission — the shape behind
  // wadc_run --num-clients.
  static SessionSpec concurrent_clients(int n);

  // N open-loop Poisson sessions at `rate_per_hour` — the shape behind the
  // capacity-study ramp harness (bench/ext_capacity).
  static SessionSpec poisson(int count, double rate_per_hour);
};

// Parses the format above from a string.
SessionSpec parse_session_spec(const std::string& text);

// Reads and parses a file; throws std::runtime_error if unreadable.
SessionSpec load_session_spec_file(const std::string& path);

}  // namespace wadc::session
