#include "session/session_manager.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"

namespace wadc::session {
namespace {

// Sub-stream labels for the manager's forked generators (arbitrary,
// fixed forever for reproducibility).
constexpr std::uint64_t kSessionSeedLabel = 0x5e5510;
constexpr std::uint64_t kArrivalLabel = 0x5e551a;

// The response predictor sized from the workload: one session must deliver
// every server's partitions to the client through its single NIC —
// iterations * num_servers messages of mean_bytes each. Control traffic is
// deliberately ignored; it is small and the prediction only has to rank
// "fits the deadline" against "misses it by a lot".
ResponsePredictor make_predictor(const core::CombinationTree& tree,
                                 const workload::ImageWorkload& workload,
                                 const net::Network& network) {
  const int messages = workload.iterations() * tree.num_servers();
  const double bytes = workload.params().mean_bytes * messages;
  return ResponsePredictor(bytes, messages,
                           network.params().startup_seconds);
}

}  // namespace

SessionManager::SessionManager(sim::Simulation& sim, net::Network& network,
                               monitor::MonitoringSystem& monitoring,
                               const core::CombinationTree& tree,
                               const workload::ImageWorkload& workload,
                               const dataflow::EngineParams& engine_base,
                               const SessionSpec& spec, std::uint64_t seed)
    : sim_(sim),
      network_(network),
      monitoring_(monitoring),
      tree_(tree),
      workload_(workload),
      engine_base_(engine_base),
      spec_(spec),
      seed_(seed),
      predictor_(make_predictor(tree, workload, network)),
      admission_(spec.admission, [this]() { return load_signals(); },
                 &predictor_),
      obs_(engine_base.obs) {
  const std::string spec_problem = spec_.validate();
  WADC_ASSERT(spec_problem.empty(), "invalid session spec: ", spec_problem);
  total_ = spec_.total_sessions();
  sessions_.reserve(static_cast<std::size_t>(total_));
  if (obs_.metrics) {
    arrivals_counter_ = &obs_.metrics->counter("session.arrivals");
    admitted_counter_ = &obs_.metrics->counter("session.admitted");
    deferred_counter_ = &obs_.metrics->counter("session.deferred");
    shed_counter_ = &obs_.metrics->counter("session.shed");
    degraded_counter_ = &obs_.metrics->counter("session.degraded");
    completed_counter_ = &obs_.metrics->counter("session.completed");
    queue_seconds_hist_ = &obs_.metrics->histogram(
        "session.queue_seconds", obs::exponential_buckets(1, 2, 24));
    response_seconds_hist_ = &obs_.metrics->histogram(
        "session.response_seconds", obs::exponential_buckets(1, 2, 24));
  }
}

std::uint64_t SessionManager::session_seed(int id) const {
  return Rng(seed_)
      .fork(kSessionSeedLabel)
      .fork(static_cast<std::uint64_t>(id))
      .next_u64();
}

void SessionManager::trace_session_event(const char* name, int id) {
  if (obs_.tracer) {
    obs_.tracer->instant("session", name, tree_.client_host(),
                         obs::kControlLane, sim_.now(), {{"session", id}});
  }
}

const char* SessionManager::session_state(int id) const {
  WADC_ASSERT(id >= 0 && static_cast<std::size_t>(id) < sessions_.size(),
              "session id out of range");
  const Session& s = sessions_[static_cast<std::size_t>(id)];
  if (s.record.shed) return "shed";
  if (s.done) return "done";
  return s.engine ? "running" : "queued";
}

int SessionManager::session_images(int id) const {
  WADC_ASSERT(id >= 0 && static_cast<std::size_t>(id) < sessions_.size(),
              "session id out of range");
  const Session& s = sessions_[static_cast<std::size_t>(id)];
  if (!s.engine) return s.record.images;  // queued (0), shed (0), or done
  return static_cast<int>(
      std::as_const(*s.engine).stats().arrival_seconds.size());
}

std::optional<double> SessionManager::client_link_bandwidth() const {
  // The minimum, not the mean: every iteration of the combination barriers
  // on all servers, so a session progresses at the pace of its slowest
  // client<->server pair. The mean overestimates throughput on
  // heterogeneous configurations by an order of magnitude, and admission
  // predictions built on it admit straight into a pileup.
  const net::HostId client = tree_.client_host();
  std::optional<double> slowest;
  for (int s = 0; s < tree_.num_servers(); ++s) {
    if (const std::optional<double> bw = monitoring_.cached_bandwidth(
            client, client, tree_.server_host(s))) {
      if (!slowest || *bw < *slowest) slowest = *bw;
    }
  }
  return slowest;
}

LoadSignals SessionManager::load_signals() const {
  LoadSignals s;  // running/queued are filled in by the controller
  s.inflight_bytes = network_.inflight_bytes();
  s.client_nic_queue = network_.host_pending_transfers(tree_.client_host());
  s.client_bandwidth = client_link_bandwidth();
  return s;
}

void SessionManager::schedule_arrivals() {
  switch (spec_.mode) {
    case ArrivalMode::kExplicit: {
      // The event queue orders by (time, seq), so scheduling in time order
      // gives sessions ids in arrival order, with listed order breaking
      // ties (stable sort).
      std::vector<ExplicitArrival> arrivals = spec_.arrivals;
      std::stable_sort(arrivals.begin(), arrivals.end(),
                       [](const ExplicitArrival& a, const ExplicitArrival& b) {
                         return a.arrival_seconds < b.arrival_seconds;
                       });
      for (const ExplicitArrival& a : arrivals) {
        sim_.schedule_at(a.arrival_seconds,
                         [this, id = a.id, deadline = a.deadline_seconds] {
                           begin_session(-1, id, deadline);
                         });
      }
      break;
    }
    case ArrivalMode::kOpenLoop: {
      Rng arrivals_rng = Rng(seed_).fork(kArrivalLabel);
      const double mean_gap_seconds = 3600.0 / spec_.open_rate_per_hour;
      double t = 0;
      for (int i = 0; i < spec_.open_count; ++i) {
        t += arrivals_rng.exponential(mean_gap_seconds);
        sim_.schedule_at(t, [this] { begin_session(-1, -1, 0); });
      }
      break;
    }
    case ArrivalMode::kClosedLoop: {
      remaining_queries_.assign(
          static_cast<std::size_t>(spec_.clients),
          spec_.queries_per_client - 1);
      for (int c = 0; c < spec_.clients; ++c) {
        sim_.schedule_at(0, [this, c] { begin_session(c, -1, 0); });
      }
      break;
    }
  }
}

void SessionManager::begin_session(int client, int spec_id,
                                   double deadline_seconds) {
  const int id = static_cast<int>(sessions_.size());
  Session s;
  s.record.id = id;
  s.record.spec_id = spec_id >= 0 ? spec_id : id;
  s.record.client = client;
  s.record.arrival_seconds = sim_.now();
  s.record.deadline_seconds = deadline_seconds > 0
                                  ? deadline_seconds
                                  : spec_.admission.deadline_seconds;
  sessions_.push_back(std::move(s));
  if (arrivals_counter_) arrivals_counter_->add();
  trace_session_event("arrive", id);

  const AdmissionDecision d = admission_.request(id, sim_.now(),
                                                 deadline_seconds);
  sessions_[static_cast<std::size_t>(id)].record.predicted_response_seconds =
      d.predicted_response_seconds;
  switch (d.outcome) {
    case AdmissionOutcome::kAdmit:
      admit(id, /*degraded=*/false, d.reason, d.predicted_response_seconds);
      break;
    case AdmissionOutcome::kAdmitDegraded:
      admit(id, /*degraded=*/true, d.reason, d.predicted_response_seconds);
      break;
    case AdmissionOutcome::kDefer:
      sessions_[static_cast<std::size_t>(id)].record.deferred = true;
      if (deferred_counter_) deferred_counter_->add();
      trace_session_event("defer", id);
      if (obs_.decisions) {
        obs_.decisions->record(sim_.now(), "admission", "defer", id,
                               {{"reason", d.reason},
                                {"queued", admission_.queued()},
                                {"running", admission_.running()}});
      }
      maybe_schedule_recheck();
      break;
    case AdmissionOutcome::kShed:
      sessions_[static_cast<std::size_t>(id)].record.shed = true;
      if (shed_counter_) shed_counter_->add();
      trace_session_event("shed", id);
      if (obs_.decisions) {
        obs_.decisions->record(
            sim_.now(), "admission", "shed", id,
            {{"reason", d.reason},
             {"predicted_s", d.predicted_response_seconds},
             {"queued", admission_.queued()},
             {"running", admission_.running()}});
      }
      finish_without_running(id);
      break;
  }
}

void SessionManager::admit(int id, bool degraded, const char* reason,
                           double predicted_seconds) {
  Session& s = sessions_[static_cast<std::size_t>(id)];
  s.record.admit_seconds = sim_.now();
  s.record.degraded = degraded;
  if (admitted_counter_) admitted_counter_->add();
  if (degraded && degraded_counter_) degraded_counter_->add();
  if (queue_seconds_hist_) {
    queue_seconds_hist_->observe(s.record.queue_seconds());
  }
  trace_session_event(degraded ? "degrade" : "admit", id);
  if (obs_.decisions) {
    obs_.decisions->record(sim_.now(), "admission",
                           degraded ? "degrade" : "admit", id,
                           {{"reason", reason},
                            {"predicted_s", predicted_seconds},
                            {"queue_s", s.record.queue_seconds()},
                            {"queued", admission_.queued()},
                            {"running", admission_.running()}});
  }

  dataflow::EngineParams params = engine_base_;
  params.session_id = id;
  params.seed = session_seed(id);
  params.degraded_mode = degraded;
  s.engine = std::make_unique<dataflow::Engine>(sim_, network_, monitoring_,
                                                tree_, workload_, params);
  s.engine->start_detached([this, id] { on_session_done(id); });
}

void SessionManager::finish_without_running(int id) {
  Session& s = sessions_[static_cast<std::size_t>(id)];
  s.done = true;
  s.record.admit_seconds = s.record.arrival_seconds;
  s.record.end_seconds = sim_.now();
  ++finished_;
  maybe_issue_next_query(s.record.client);
  if (finished_ == total_) sim_.request_stop();
}

void SessionManager::on_session_done(int id) {
  Session& s = sessions_[static_cast<std::size_t>(id)];
  s.done = true;
  s.record.end_seconds = sim_.now();
  // Harvest only the scalars the record keeps; the engine (and its
  // per-image vectors) is torn down right after this callback returns.
  const dataflow::RunStats& run = std::as_const(*s.engine).stats();
  s.record.completed = run.completed;
  s.record.images = static_cast<int>(run.arrival_seconds.size());
  s.record.relocations = run.relocations;
  if (completed_counter_) completed_counter_->add();
  if (response_seconds_hist_) {
    response_seconds_hist_->observe(s.record.response_seconds());
  }
  trace_session_event("complete", id);
  ++finished_;
  // The engine stays alive until the run ends: its destructor terminates
  // every process in the SHARED simulation, so a finished engine cannot be
  // retired while other sessions still run. The record keeps only scalars,
  // so the per-session cost of the finished engine is its fixed state, not
  // a growing per-image history copy.
  maybe_issue_next_query(s.record.client);

  for (const int next : admission_.on_completed(sim_.now())) {
    admit(next, /*degraded=*/false, "dequeued", -1);
  }
  maybe_schedule_recheck();

  if (finished_ == total_) sim_.request_stop();
}

void SessionManager::maybe_issue_next_query(int client) {
  if (client < 0) return;
  if (remaining_queries_[static_cast<std::size_t>(client)] > 0) {
    --remaining_queries_[static_cast<std::size_t>(client)];
    sim_.schedule_in(spec_.think_seconds,
                     [this, client] { begin_session(client, -1, 0); });
  }
}

void SessionManager::maybe_schedule_recheck() {
  if (spec_.admission.policy != AdmissionPolicy::kBandwidthAware) return;
  if (recheck_pending_ || admission_.queued() == 0) return;
  recheck_pending_ = true;
  double delay = spec_.admission.recheck_seconds;
  // Never sleep past the queue head's deferral bound: the recheck that
  // lands on the bound is the one that force-admits it.
  if (const std::optional<sim::SimTime> forced =
          admission_.next_forced_admit()) {
    delay = std::min(delay, std::max(0.0, *forced - sim_.now()));
  }
  // now + (forced - now) can round an ulp short of the bound; a zero-width
  // recheck would then re-fire at the same timestamp forever. The floor
  // keeps simulated time strictly advancing across rechecks.
  delay = std::max(delay, 1e-6);
  sim_.schedule_in(delay, [this] { on_recheck(); });
}

void SessionManager::on_recheck() {
  recheck_pending_ = false;
  for (const int id : admission_.on_recheck(sim_.now())) {
    admit(id, /*degraded=*/false, "dequeued", -1);
  }
  maybe_schedule_recheck();
}

SessionStats SessionManager::run() {
  WADC_ASSERT(!ran_, "SessionManager::run() may be called only once");
  ran_ = true;
  schedule_arrivals();
  sim_.run();
  WADC_ASSERT(finished_ == total_, "session run ended with ",
              total_ - finished_, " of ", total_, " sessions unfinished");

  SessionStats stats;
  for (const Session& s : sessions_) stats.add(s.record);
  return stats;
}

}  // namespace wadc::session
