#include "session/session_manager.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"

namespace wadc::session {
namespace {

// Sub-stream labels for the manager's forked generators (arbitrary,
// fixed forever for reproducibility).
constexpr std::uint64_t kSessionSeedLabel = 0x5e5510;
constexpr std::uint64_t kArrivalLabel = 0x5e551a;

}  // namespace

SessionManager::SessionManager(sim::Simulation& sim, net::Network& network,
                               monitor::MonitoringSystem& monitoring,
                               const core::CombinationTree& tree,
                               const workload::ImageWorkload& workload,
                               const dataflow::EngineParams& engine_base,
                               const SessionSpec& spec, std::uint64_t seed)
    : sim_(sim),
      network_(network),
      monitoring_(monitoring),
      tree_(tree),
      workload_(workload),
      engine_base_(engine_base),
      spec_(spec),
      seed_(seed),
      admission_(spec.admission,
                 [this]() { return client_link_bandwidth(); }),
      obs_(engine_base.obs) {
  const std::string spec_problem = spec_.validate();
  WADC_ASSERT(spec_problem.empty(), "invalid session spec: ", spec_problem);
  total_ = spec_.total_sessions();
  sessions_.reserve(static_cast<std::size_t>(total_));
  if (obs_.metrics) {
    arrivals_counter_ = &obs_.metrics->counter("session.arrivals");
    admitted_counter_ = &obs_.metrics->counter("session.admitted");
    deferred_counter_ = &obs_.metrics->counter("session.deferred");
    completed_counter_ = &obs_.metrics->counter("session.completed");
    queue_seconds_hist_ = &obs_.metrics->histogram(
        "session.queue_seconds", obs::exponential_buckets(1, 2, 24));
    response_seconds_hist_ = &obs_.metrics->histogram(
        "session.response_seconds", obs::exponential_buckets(1, 2, 24));
  }
}

std::uint64_t SessionManager::session_seed(int id) const {
  return Rng(seed_)
      .fork(kSessionSeedLabel)
      .fork(static_cast<std::uint64_t>(id))
      .next_u64();
}

void SessionManager::trace_session_event(const char* name, int id) {
  if (obs_.tracer) {
    obs_.tracer->instant("session", name, tree_.client_host(),
                         obs::kControlLane, sim_.now(), {{"session", id}});
  }
}

const char* SessionManager::session_state(int id) const {
  WADC_ASSERT(id >= 0 && static_cast<std::size_t>(id) < sessions_.size(),
              "session id out of range");
  const Session& s = sessions_[static_cast<std::size_t>(id)];
  if (s.done) return "done";
  return s.engine ? "running" : "queued";
}

int SessionManager::session_images(int id) const {
  WADC_ASSERT(id >= 0 && static_cast<std::size_t>(id) < sessions_.size(),
              "session id out of range");
  const Session& s = sessions_[static_cast<std::size_t>(id)];
  if (s.done) return s.record.images;
  if (!s.engine) return 0;
  return static_cast<int>(
      std::as_const(*s.engine).stats().arrival_seconds.size());
}

std::optional<double> SessionManager::client_link_bandwidth() const {
  const net::HostId client = tree_.client_host();
  double sum = 0;
  int n = 0;
  for (int s = 0; s < tree_.num_servers(); ++s) {
    if (const std::optional<double> bw = monitoring_.cached_bandwidth(
            client, client, tree_.server_host(s))) {
      sum += *bw;
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return sum / n;
}

void SessionManager::schedule_arrivals() {
  switch (spec_.mode) {
    case ArrivalMode::kExplicit: {
      // The event queue orders by (time, seq), so scheduling in listed
      // order gives sessions ids in arrival order with listed order
      // breaking ties.
      std::vector<double> times = spec_.arrivals;
      std::sort(times.begin(), times.end());
      for (double t : times) {
        sim_.schedule_at(t, [this] { begin_session(-1); });
      }
      break;
    }
    case ArrivalMode::kOpenLoop: {
      Rng arrivals_rng = Rng(seed_).fork(kArrivalLabel);
      const double mean_gap_seconds = 3600.0 / spec_.open_rate_per_hour;
      double t = 0;
      for (int i = 0; i < spec_.open_count; ++i) {
        t += arrivals_rng.exponential(mean_gap_seconds);
        sim_.schedule_at(t, [this] { begin_session(-1); });
      }
      break;
    }
    case ArrivalMode::kClosedLoop: {
      remaining_queries_.assign(
          static_cast<std::size_t>(spec_.clients),
          spec_.queries_per_client - 1);
      for (int c = 0; c < spec_.clients; ++c) {
        sim_.schedule_at(0, [this, c] { begin_session(c); });
      }
      break;
    }
  }
}

void SessionManager::begin_session(int client) {
  const int id = static_cast<int>(sessions_.size());
  Session s;
  s.record.id = id;
  s.record.client = client;
  s.record.arrival_seconds = sim_.now();
  sessions_.push_back(std::move(s));
  if (arrivals_counter_) arrivals_counter_->add();
  trace_session_event("arrive", id);
  if (admission_.request(id)) {
    admit(id);
  } else {
    if (deferred_counter_) deferred_counter_->add();
    trace_session_event("defer", id);
    if (obs_.decisions) {
      obs_.decisions->record(sim_.now(), "admission", "defer", id,
                             {{"queued", admission_.queued()},
                              {"running", admission_.running()}});
    }
    maybe_schedule_recheck();
  }
}

void SessionManager::admit(int id) {
  Session& s = sessions_[static_cast<std::size_t>(id)];
  s.record.admit_seconds = sim_.now();
  if (admitted_counter_) admitted_counter_->add();
  if (queue_seconds_hist_) {
    queue_seconds_hist_->observe(s.record.queue_seconds());
  }
  trace_session_event("admit", id);
  if (obs_.decisions) {
    obs_.decisions->record(sim_.now(), "admission", "admit", id,
                           {{"queue_s", s.record.queue_seconds()},
                            {"queued", admission_.queued()},
                            {"running", admission_.running()}});
  }

  dataflow::EngineParams params = engine_base_;
  params.session_id = id;
  params.seed = session_seed(id);
  s.engine = std::make_unique<dataflow::Engine>(sim_, network_, monitoring_,
                                                tree_, workload_, params);
  s.engine->start_detached([this, id] { on_session_done(id); });
}

void SessionManager::on_session_done(int id) {
  Session& s = sessions_[static_cast<std::size_t>(id)];
  s.done = true;
  s.record.end_seconds = sim_.now();
  s.record.run = std::as_const(*s.engine).stats();
  s.record.completed = s.record.run.completed;
  s.record.images = static_cast<int>(s.record.run.arrival_seconds.size());
  if (completed_counter_) completed_counter_->add();
  if (response_seconds_hist_) {
    response_seconds_hist_->observe(s.record.response_seconds());
  }
  trace_session_event("complete", id);
  ++finished_;

  // Closed loop: the issuing client thinks, then issues its next query.
  if (const int c = s.record.client; c >= 0) {
    if (remaining_queries_[static_cast<std::size_t>(c)] > 0) {
      --remaining_queries_[static_cast<std::size_t>(c)];
      sim_.schedule_in(spec_.think_seconds, [this, c] { begin_session(c); });
    }
  }

  for (const int next : admission_.on_completed()) admit(next);
  maybe_schedule_recheck();

  if (finished_ == total_) sim_.request_stop();
}

void SessionManager::maybe_schedule_recheck() {
  if (spec_.admission.policy != AdmissionPolicy::kBandwidthAware) return;
  if (recheck_pending_ || admission_.queued() == 0) return;
  recheck_pending_ = true;
  sim_.schedule_in(spec_.admission.recheck_seconds, [this] { on_recheck(); });
}

void SessionManager::on_recheck() {
  recheck_pending_ = false;
  for (const int id : admission_.on_recheck()) admit(id);
  maybe_schedule_recheck();
}

SessionStats SessionManager::run() {
  WADC_ASSERT(!ran_, "SessionManager::run() may be called only once");
  ran_ = true;
  schedule_arrivals();
  sim_.run();
  WADC_ASSERT(finished_ == total_, "session run ended with ",
              total_ - finished_, " of ", total_, " sessions unfinished");

  SessionStats stats;
  stats.sessions.reserve(sessions_.size());
  for (const Session& s : sessions_) {
    stats.sessions.push_back(s.record);
    stats.makespan_seconds =
        std::max(stats.makespan_seconds, s.record.end_seconds);
  }
  return stats;
}

}  // namespace wadc::session
