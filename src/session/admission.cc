#include "session/admission.h"

#include <utility>

namespace wadc::session {

AdmissionController::AdmissionController(const AdmissionParams& params,
                                         BandwidthProbe probe)
    : params_(params), probe_(std::move(probe)) {}

bool AdmissionController::may_start() const {
  switch (params_.policy) {
    case AdmissionPolicy::kUnbounded:
      return true;
    case AdmissionPolicy::kFixedCap:
      return running_ < params_.max_concurrent;
    case AdmissionPolicy::kBandwidthAware: {
      // Forward progress: an idle system always admits, whatever the
      // bandwidth looks like — deferring with nothing running helps nobody.
      if (running_ == 0) return true;
      const std::optional<double> bw = probe_ ? probe_() : std::nullopt;
      // No fresh measurement is no evidence of congestion; admit and let
      // passive monitoring of the session's own traffic settle the question
      // by the next decision point.
      return !bw.has_value() || *bw >= params_.min_bandwidth;
    }
  }
  return true;
}

bool AdmissionController::request(int id) {
  if (may_start()) {
    ++running_;
    return true;
  }
  queue_.push_back(id);
  return false;
}

std::vector<int> AdmissionController::drain_queue() {
  std::vector<int> admitted;
  while (!queue_.empty() && may_start()) {
    admitted.push_back(queue_.front());
    queue_.pop_front();
    ++running_;
  }
  return admitted;
}

std::vector<int> AdmissionController::on_completed() {
  --running_;
  return drain_queue();
}

std::vector<int> AdmissionController::on_recheck() { return drain_queue(); }

}  // namespace wadc::session
