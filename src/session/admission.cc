#include "session/admission.h"

#include <utility>

namespace wadc::session {

const char* admission_outcome_name(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmit:
      return "admit";
    case AdmissionOutcome::kAdmitDegraded:
      return "degrade";
    case AdmissionOutcome::kDefer:
      return "defer";
    case AdmissionOutcome::kShed:
      return "shed";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionParams& params,
                                         SignalsProbe probe,
                                         const ResponsePredictor* predictor)
    : params_(params), probe_(std::move(probe)), predictor_(predictor) {}

LoadSignals AdmissionController::signals() const {
  LoadSignals s = probe_ ? probe_() : LoadSignals{};
  s.running = running_;
  s.queued = queued();
  return s;
}

bool AdmissionController::may_start(sim::SimTime now,
                                    sim::SimTime queued_at) const {
  switch (params_.policy) {
    case AdmissionPolicy::kUnbounded:
    case AdmissionPolicy::kDeadlineAware:
    case AdmissionPolicy::kDegrading:
      return true;
    case AdmissionPolicy::kFixedCap:
    case AdmissionPolicy::kLoadShedding:
      return running_ < params_.max_concurrent;
    case AdmissionPolicy::kBandwidthAware: {
      // Forward progress, twice over: an idle system always admits, and a
      // session that has waited out the deferral bound is force-admitted —
      // congestion may delay it but can never starve it.
      if (running_ == 0) return true;
      if (now - queued_at >= params_.max_defer_seconds) return true;
      const std::optional<double> bw =
          probe_ ? probe_().client_bandwidth : std::nullopt;
      // No fresh measurement is no evidence of congestion; admit and let
      // passive monitoring of the session's own traffic settle the question
      // by the next decision point.
      return !bw.has_value() || *bw >= params_.min_bandwidth;
    }
  }
  return true;
}

AdmissionDecision AdmissionController::request(int id, sim::SimTime now,
                                               double deadline_seconds) {
  AdmissionDecision d;
  switch (params_.policy) {
    case AdmissionPolicy::kUnbounded:
      d.outcome = AdmissionOutcome::kAdmit;
      d.reason = "unbounded";
      break;
    case AdmissionPolicy::kFixedCap:
      if (running_ < params_.max_concurrent) {
        d.outcome = AdmissionOutcome::kAdmit;
        d.reason = "cap-free";
      } else {
        d.outcome = AdmissionOutcome::kDefer;
        d.reason = "cap-full";
      }
      break;
    case AdmissionPolicy::kBandwidthAware:
      if (may_start(now, now)) {
        d.outcome = AdmissionOutcome::kAdmit;
        d.reason = "bandwidth-clear";
      } else {
        d.outcome = AdmissionOutcome::kDefer;
        d.reason = "bandwidth-low";
      }
      break;
    case AdmissionPolicy::kLoadShedding:
      if (running_ < params_.max_concurrent) {
        d.outcome = AdmissionOutcome::kAdmit;
        d.reason = "cap-free";
      } else if (queued() < params_.max_queue) {
        d.outcome = AdmissionOutcome::kDefer;
        d.reason = "cap-full";
      } else {
        d.outcome = AdmissionOutcome::kShed;
        d.reason = "queue-full";
      }
      break;
    case AdmissionPolicy::kDeadlineAware: {
      const double deadline = deadline_seconds > 0
                                  ? deadline_seconds
                                  : params_.deadline_seconds;
      if (deadline <= 0 || predictor_ == nullptr) {
        d.outcome = AdmissionOutcome::kAdmit;
        d.reason = "no-deadline";
        break;
      }
      const std::optional<double> predicted = predictor_->predict(signals());
      if (!predicted.has_value()) {
        // No bandwidth estimate, no prediction. An idle system admits —
        // there is nothing to contend with and the session's own traffic
        // warms the cache. A busy one sheds: admitting blind on top of
        // existing load is exactly the cold-start pileup that blows every
        // deadline at once.
        if (running_ == 0) {
          d.outcome = AdmissionOutcome::kAdmit;
          d.reason = "no-estimate";
        } else {
          d.outcome = AdmissionOutcome::kShed;
          d.reason = "no-estimate-busy";
        }
      } else if (*predicted <= deadline) {
        d.outcome = AdmissionOutcome::kAdmit;
        d.reason = "predicted-fit";
        d.predicted_response_seconds = *predicted;
      } else {
        d.outcome = AdmissionOutcome::kShed;
        d.reason = "predicted-miss";
        d.predicted_response_seconds = *predicted;
      }
      break;
    }
    case AdmissionPolicy::kDegrading:
      if (running_ < params_.max_concurrent) {
        d.outcome = AdmissionOutcome::kAdmit;
        d.reason = "cap-free";
      } else {
        d.outcome = AdmissionOutcome::kAdmitDegraded;
        d.reason = "over-cap";
      }
      break;
  }
  switch (d.outcome) {
    case AdmissionOutcome::kAdmit:
    case AdmissionOutcome::kAdmitDegraded:
      ++running_;
      break;
    case AdmissionOutcome::kDefer:
      queue_.push_back({id, now});
      break;
    case AdmissionOutcome::kShed:
      break;
  }
  return d;
}

std::vector<int> AdmissionController::drain_queue(sim::SimTime now) {
  std::vector<int> admitted;
  while (!queue_.empty() && may_start(now, queue_.front().queued_at)) {
    admitted.push_back(queue_.front().id);
    queue_.pop_front();
    ++running_;
  }
  return admitted;
}

std::vector<int> AdmissionController::on_completed(sim::SimTime now) {
  --running_;
  return drain_queue(now);
}

std::vector<int> AdmissionController::on_recheck(sim::SimTime now) {
  return drain_queue(now);
}

std::optional<sim::SimTime> AdmissionController::next_forced_admit() const {
  if (params_.policy != AdmissionPolicy::kBandwidthAware || queue_.empty()) {
    return std::nullopt;
  }
  // FIFO: the head of the queue has waited longest.
  return queue_.front().queued_at + params_.max_defer_seconds;
}

}  // namespace wadc::session
