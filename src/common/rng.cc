#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"

namespace wadc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro must not be seeded with all-zero state; splitmix64 makes this
  // astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  WADC_ASSERT(bound > 0, "next_below(0)");
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 random bits → [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  WADC_ASSERT(lo <= hi, "uniform: inverted range");
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double sigma) {
  // Box-Muller; u1 is nudged away from 0 so log() is finite.
  const double u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1 + 1e-300));
  return mean + sigma * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  WADC_ASSERT(mean > 0, "exponential: non-positive mean");
  return -mean * std::log(1.0 - next_double());
}

bool Rng::bernoulli(double p) { return next_double() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    WADC_ASSERT(w >= 0, "weighted_index: negative weight");
    total += w;
  }
  WADC_ASSERT(total > 0, "weighted_index: all weights zero");
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;  // floating-point edge: return the last entry
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  WADC_ASSERT(k <= n, "sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + next_below(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork(std::uint64_t label) const {
  // Mix the label through splitmix so fork(0) != the parent stream.
  std::uint64_t x = seed_ ^ (0xa0761d6478bd642fULL + label);
  const std::uint64_t mixed = splitmix64(x) ^ splitmix64(x);
  return Rng(mixed);
}

}  // namespace wadc
