// Assertion and fatal-error helpers used across the wadc libraries.
//
// Simulation code is full of protocol invariants ("an operator may only be
// relocated between dispatching its output and issuing its next demand").
// We want those invariants checked in release builds of the experiment
// harness too, so WADC_ASSERT is always on; WADC_DASSERT compiles away in
// NDEBUG builds and is reserved for hot paths.
#pragma once

#include <cstdint>
#include <string>

namespace wadc {

// Prints the failure message to stderr and aborts. Never returns.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);

namespace detail {
// Lightweight formatter so assertion sites can say
//   WADC_ASSERT(x < n, "index ", x, " out of range ", n);
// without pulling in a formatting library.
inline void append_all(std::string&) {}
template <typename T, typename... Rest>
void append_all(std::string& out, const T& v, const Rest&... rest) {
  if constexpr (std::is_arithmetic_v<T>) {
    out += std::to_string(v);
  } else {
    out += v;
  }
  append_all(out, rest...);
}
template <typename... Args>
std::string format_msg(const Args&... args) {
  std::string out;
  append_all(out, args...);
  return out;
}
}  // namespace detail

}  // namespace wadc

#define WADC_ASSERT(expr, ...)                                         \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::wadc::assert_fail(#expr, __FILE__, __LINE__,                   \
                          ::wadc::detail::format_msg(__VA_ARGS__));    \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define WADC_DASSERT(expr, ...) \
  do {                          \
  } while (0)
#else
#define WADC_DASSERT(expr, ...) WADC_ASSERT(expr, __VA_ARGS__)
#endif

#define WADC_FATAL(...)                                             \
  ::wadc::assert_fail("fatal", __FILE__, __LINE__,                  \
                      ::wadc::detail::format_msg(__VA_ARGS__))
