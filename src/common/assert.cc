#include "common/assert.h"

#include <cstdio>
#include <cstdlib>

namespace wadc {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "wadc assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace wadc
