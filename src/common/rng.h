// Deterministic random number generation.
//
// All stochastic pieces of the reproduction (trace synthesis, image-size
// sampling, network-configuration sampling, the local algorithm's k random
// candidate sites) draw from this generator so that every experiment is
// reproducible from a single 64-bit seed. We implement the generator and the
// distributions ourselves rather than using <random>'s distributions, whose
// output sequences are not specified by the standard and differ across
// library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace wadc {

// xoshiro256** by Blackman & Vigna, seeded via SplitMix64. Fast, tiny state,
// and excellent statistical quality for simulation purposes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Uniform on [0, 2^64).
  std::uint64_t next_u64();

  // Uniform on [0, bound). bound == 0 is invalid.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform on [0, 1).
  double next_double();

  // Uniform on [lo, hi).
  double uniform(double lo, double hi);

  // Normal(mean, sigma) via Box-Muller (no cached spare: keeps the stream
  // position a pure function of the number of calls).
  double normal(double mean, double sigma);

  // Log-normal such that the *underlying normal* has the given mean/sigma.
  double lognormal(double mu, double sigma);

  // Exponential with the given mean (mean > 0).
  double exponential(double mean);

  // True with probability p.
  bool bernoulli(double p);

  // Samples an index according to non-negative weights (at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  // k distinct values from [0, n) in random order; k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Derives an independent generator for a named sub-stream. Mixing the
  // label into the seed keeps sub-streams decorrelated while remaining a
  // pure function of (seed, label).
  Rng fork(std::uint64_t label) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace wadc
