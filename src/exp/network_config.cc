#include "exp/network_config.h"

#include "common/rng.h"

namespace wadc::exp {

net::LinkTable make_network_config(const trace::TraceLibrary& library,
                                   int num_hosts, std::uint64_t config_seed,
                                   const NetworkConfigParams& params) {
  Rng rng = Rng(config_seed).fork(0xc0f1);
  net::LinkTable table(num_hosts);
  for (net::HostId a = 0; a < num_hosts; ++a) {
    for (net::HostId b = a + 1; b < num_hosts; ++b) {
      const std::size_t idx = library.sample_index(rng);
      table.set_link(a, b, &library.trace(idx),
                     params.trace_start_offset_seconds);
    }
  }
  return table;
}

}  // namespace wadc::exp
