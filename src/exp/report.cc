#include "exp/report.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/assert.h"
#include "trace/stats.h"

namespace wadc::exp {

SeriesStats stats_of(const std::vector<double>& xs) {
  SeriesStats s;
  s.mean = trace::mean_of(xs);
  s.median = trace::median_of(xs);
  s.p10 = trace::percentile_of(xs, 10);
  s.p90 = trace::percentile_of(xs, 90);
  return s;
}

void print_sorted_series(const std::string& header,
                         const std::vector<std::string>& names,
                         const std::vector<std::vector<double>>& series,
                         std::size_t sort_by) {
  WADC_ASSERT(!series.empty() && sort_by < series.size(),
              "bad sort series index");
  const std::size_t n = series[0].size();
  for (const auto& s : series) {
    WADC_ASSERT(s.size() == n, "series of different lengths");
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return series[sort_by][a] < series[sort_by][b];
  });

  std::printf("%s\n", header.c_str());
  std::printf("# rank");
  for (const auto& name : names) std::printf("\t%s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%zu", i);
    for (const auto& s : series) std::printf("\t%.3f", s[order[i]]);
    std::printf("\n");
  }
}

void print_summary(const std::vector<std::string>& names,
                   const std::vector<std::vector<double>>& series,
                   const std::string& unit) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    const SeriesStats s = stats_of(series[i]);
    std::printf("%-16s mean=%8.3f  median=%8.3f  p10=%8.3f  p90=%8.3f %s\n",
                names[i].c_str(), s.mean, s.median, s.p10, s.p90,
                unit.c_str());
  }
}

}  // namespace wadc::exp
