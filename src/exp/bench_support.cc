#include "exp/bench_support.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "exp/parallel.h"

namespace wadc::exp {

namespace {

bool parse_jobs_value(const char* s, int& out) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (*s == '\0' || *end != '\0' || errno != 0 || v < 0 || v > 1 << 20) {
    return false;
  }
  if (v == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    out = hw == 0 ? 1 : static_cast<int>(hw);
  } else {
    out = static_cast<int>(v);
  }
  return true;
}

}  // namespace

BenchOptions parse_bench_options(int argc, char** argv, const char* name) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      if (!parse_jobs_value(arg + 7, opt.jobs)) {
        std::fprintf(stderr, "invalid integer for --jobs: '%s'\n", arg + 7);
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--bench-out=", 12) == 0) {
      if (arg[12] == '\0') {
        std::fprintf(stderr, "--bench-out requires a file path\n");
        std::exit(2);
      }
      opt.bench_out = arg + 12;
    } else if (std::strncmp(arg, "--profile-out=", 14) == 0) {
      if (arg[14] == '\0') {
        std::fprintf(stderr, "--profile-out requires a file path\n");
        std::exit(2);
      }
      opt.profile_out = arg + 14;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::fprintf(stderr,
                   "usage: %s [--jobs=N] [--bench-out=FILE] "
                   "[--profile-out=FILE]\n"
                   "  --jobs=N           sweep worker threads (0 = all "
                   "hardware threads;\n"
                   "                     default: WADC_JOBS, else serial)\n"
                   "  --bench-out=FILE   write a JSON perf report\n"
                   "  --profile-out=FILE write a wall-clock phase profile "
                   "(obs::Profiler)\n"
                   "environment: WADC_CONFIGS, WADC_SEED, WADC_JOBS\n",
                   name);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s' (try --help)\n", name,
                   arg);
      std::exit(2);
    }
  }
  return opt;
}

BenchHarness::BenchHarness(int argc, char** argv, const char* name)
    : name_(name), options_(parse_bench_options(argc, argv, name)) {
  if (!options_.profile_out.empty()) {
    profiler_ = std::make_unique<obs::Profiler>();
  }
}

int BenchHarness::finish(int resolved_jobs) {
  BenchReport report;
  report.name = name_;
  report.jobs = resolved_jobs >= 0 ? resolved_jobs
                                   : resolve_jobs(options_.jobs);
  report.runs = runs_;
  report.wall_seconds = timer_.seconds();
  report.hardware_concurrency =
      static_cast<int>(std::thread::hardware_concurrency());
#ifdef WADC_BUILD_TYPE
  report.build_type = WADC_BUILD_TYPE;
#endif
  print_bench_report(report);
  if (!options_.bench_out.empty()) {
    try {
      write_bench_json_file(report, options_.bench_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write bench report: %s\n", e.what());
      return 1;
    }
  }
  if (profiler_ != nullptr) {
    try {
      profiler_->write_json_file(options_.profile_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write profile: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}

void print_bench_report(const BenchReport& report) {
  std::fprintf(stderr, "[bench] %s: %lld runs in %.2f s (%.1f runs/s, "
               "jobs=%d)\n",
               report.name.c_str(), report.runs, report.wall_seconds,
               report.runs_per_second(), report.jobs);
}

void write_bench_json_file(const BenchReport& report,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out.precision(6);
  out << "{\n"
      << "  \"name\": \"" << report.name << "\",\n"
      << "  \"jobs\": " << report.jobs << ",\n"
      << "  \"runs\": " << report.runs << ",\n"
      << "  \"hardware_concurrency\": " << report.hardware_concurrency
      << ",\n"
      << "  \"build_type\": \"" << report.build_type << "\",\n"
      << "  \"wall_seconds\": " << std::fixed << report.wall_seconds
      << ",\n"
      << "  \"runs_per_second\": " << report.runs_per_second() << "\n"
      << "}\n";
}

}  // namespace wadc::exp
