// Single-run and sweep drivers for the paper's experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache_config.h"
#include "core/algorithm_kind.h"
#include "core/combination_tree.h"
#include "dataflow/engine_params.h"
#include "dataflow/run_stats.h"
#include "exp/network_config.h"
#include "fault/fault_schedule.h"
#include "monitor/monitoring_system.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "net/link_table.h"
#include "net/network.h"
#include "session/session_spec.h"
#include "session/session_stats.h"
#include "sim/arena.h"
#include "sim/simulation.h"
#include "trace/library.h"
#include "workload/image_workload.h"

namespace wadc::exp {

// Which byte-mover backs the run's net::Network (see net/transport.h and
// docs/ARCHITECTURE.md, "Transport backends").
enum class Backend {
  // The simulated bandwidth-trace integrator: pure discrete-event,
  // deterministic, byte-identical output (the default, and the only
  // backend the golden harness accepts).
  kSim,
  // Real loopback TCP sockets paced to the configured bandwidths, with the
  // event loop keyed to CLOCK_MONOTONIC (net/realtime.h). Timings depend
  // on kernel scheduling: the documented non-deterministic exception.
  kTcp,
};

const char* backend_name(Backend backend);

// Everything needed to reproduce one simulated run.
struct ExperimentSpec {
  core::AlgorithmKind algorithm = core::AlgorithmKind::kDownloadAll;
  int num_servers = 8;                       // §4 main experiments
  core::TreeShape tree_shape = core::TreeShape::kCompleteBinary;
  int iterations = 180;
  sim::SimTime relocation_period_seconds = 600;  // "once every 10 minutes"
  int local_extra_candidates = 0;

  workload::WorkloadParams workload;
  monitor::MonitorParams monitor;
  net::NetworkParams network;
  NetworkConfigParams config;

  // Base engine parameters; algorithm, relocation period, extra-candidate
  // count and seed are overridden from the fields above. Use this to set
  // ablation knobs (control_priority, oracle_bandwidth, merge_rule, ...).
  dataflow::EngineParams engine_base;

  // Seed identifying the network configuration (the trace→link assignment)
  // and the workload draw.
  std::uint64_t config_seed = 1;

  // Transport backend. kSim is the paper's simulation; kTcp moves every
  // transfer over real loopback sockets in (scaled) wall-clock time. The
  // tcp knobs below are ignored under kSim.
  Backend backend = Backend::kSim;
  // kTcp: simulated seconds per wall second (a 3-hour simulated run at the
  // default 600 takes ~18 wall seconds).
  double tcp_time_scale = 600;
  // kTcp: pace frames to the configured link bandwidths (off = as fast as
  // loopback allows; timings then say nothing about the modeled network).
  bool tcp_rate_limit = true;

  // Result cache (src/cache, docs/CACHING.md). Disabled (the default) runs
  // exactly the cache-free simulation — same events, same RNG draws,
  // byte-identical output (the goldens pin this). When enabled, the run
  // drivers build one CacheFabric per run and hand it to every engine; in
  // session mode all concurrent sessions share it, which is where
  // cross-session reuse comes from.
  cache::CacheConfig cache;

  // Fault injection. Empty (the default) runs exactly the fault-free
  // simulation — same events, same RNG draws, byte-identical output. When
  // non-empty, run_experiment builds a FaultInjector from it (seeded with
  // config_seed), arms it, and hands it to the engine, which then runs in
  // fault-tolerant mode (timeouts, retries, relocation-based repair).
  fault::FaultSpec fault;

  // Observability sink for the run: attached to the network, the monitoring
  // subsystem, and the engine, so one run's transfer/relocation/barrier/
  // probe events, metrics, and adaptation-decision records land in one
  // place. Null by default (no overhead). The sweep runners treat this as
  // the sweep-level sink: each run records into private sinks which are
  // merged into these pointers in (series, configuration) order after all
  // workers join, so the combined output is byte-identical for any jobs
  // count. When obs.timeline is set, the run drives an exp-layer
  // TimelineSampler at `timeline_sample_seconds` of simulated time.
  obs::Obs obs;

  // Sampling interval for obs.timeline, in simulated seconds.
  sim::SimTime timeline_sample_seconds = 60;

  dataflow::EngineParams engine_params(std::uint64_t seed) const;
};

struct RunResult {
  dataflow::RunStats stats;
  double completion_seconds = 0;
  double mean_interarrival_seconds = 0;
};

// Reusable per-worker state for sweep runs (epoch memory reuse). One
// RunContext is owned by exactly one sweep worker at a time; runs on it
// must be serialized. It carries:
//   - the worker's sim::Arena, installed as the thread's current arena for
//     the duration of each run and reset() between runs, so a warm worker
//     serves whole simulations from recycled memory;
//   - the Simulation / LinkTable / Network kernel objects, reset() (not
//     reconstructed) per run so their container capacity carries over.
// A run through a warm RunContext is byte-identical to a run through a
// fresh one — the golden harness pins this at jobs 1 and 4.
class RunContext {
 public:
  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  sim::Arena& arena() { return arena_; }
  // Arena + global-allocator counters for this context's runs; feeds the
  // profiler's sim.alloc.* counters. Warmth-dependent, hence never exported
  // through deterministic (golden) channels.
  const sim::ArenaStats& arena_stats() const { return arena_.stats(); }

 private:
  friend RunResult run_experiment(const trace::TraceLibrary& library,
                                  const ExperimentSpec& spec,
                                  RunContext& ctx);

  sim::Arena arena_;
  sim::Simulation sim_;
  // The per-run network configuration is *assigned* into this slot so the
  // table's link vector reuses its capacity run over run.
  std::optional<net::LinkTable> links_;
  std::unique_ptr<net::Network> network_;  // constructed on the first run
};

// Builds the whole stack (simulation, network, monitoring, engine) for one
// configuration and runs it to completion.
RunResult run_experiment(const trace::TraceLibrary& library,
                         const ExperimentSpec& spec);

// Epoch-reuse variant: runs the same experiment through a worker-owned
// RunContext. The first run on a context warms it up (allocates arena
// blocks, constructs the kernel objects); steady-state runs reuse all of it
// and perform no global-allocator calls (tests/alloc_budget_test.cc pins
// this). Output is byte-identical to the fresh-context overload.
RunResult run_experiment(const trace::TraceLibrary& library,
                         const ExperimentSpec& spec, RunContext& ctx);

// Multi-client variant: builds ONE shared stack (simulation, network,
// monitoring) for the configuration and runs `sessions` concurrent query
// sessions over it under the session runtime (session/session_manager.h).
// spec.algorithm/engine_base configure every session's engine; per-session
// seeds fork from config_seed. A non-empty spec.fault arms a FaultInjector
// against the shared network; every admitted engine runs fault-tolerant.
// Prefer transient (crash + restart) schedules — detached session engines
// have no run deadline, and a permanently dead client/server aborts the
// affected sessions (see session/session_manager.h).
session::SessionStats run_session_experiment(
    const trace::TraceLibrary& library, const ExperimentSpec& spec,
    const session::SessionSpec& sessions);

// ---- sweeps over many configurations (the paper's 300) -------------------

struct SweepSpec {
  int configs = 300;
  std::uint64_t base_seed = 1000;
  ExperimentSpec experiment;  // algorithm field is overridden per series

  // Worker threads for the sweep: every (configuration x algorithm) cell is
  // an independent run, so they execute on a fixed-size pool. 0 (the
  // default) resolves through WADC_JOBS, falling back to serial; results,
  // ordering and any attached obs output are byte-identical for every jobs
  // value (see docs/PERFORMANCE.md).
  int jobs = 0;

  // Optional wall-clock profiler for the sweep runner itself (setup /
  // engine-run / obs-merge / result-collection phases, per worker).
  // Non-deterministic by nature; never merged into the obs sinks above.
  obs::Profiler* profiler = nullptr;
};

struct AlgorithmSeries {
  core::AlgorithmKind algorithm;
  int local_extra_candidates = 0;
  std::vector<double> completion_seconds;    // per configuration
  std::vector<double> mean_interarrival;     // per configuration
  std::vector<double> speedup;               // vs download-all, per config
  std::vector<int> relocations;              // per configuration
};

// Sweep progress observer. The runner serializes invocations (one at a
// time, under a lock) and `done` increases by exactly 1 per call, whatever
// the worker count; callbacks need no synchronization of their own.
using ProgressFn = std::function<void(int done, int total)>;

// Runs every algorithm on every configuration. The first entry of
// `algorithms` need not be download-all: the baseline is always run and the
// speedups of all series are measured against it (§5: "the download-all
// placement algorithm is used as the base-case").
std::vector<AlgorithmSeries> run_sweep(
    const trace::TraceLibrary& library, const SweepSpec& sweep,
    const std::vector<core::AlgorithmKind>& algorithms,
    const ProgressFn& progress = {});

// Variant for Figure 7: local algorithm with several k values. Returns one
// series per k (speedups vs download-all).
std::vector<AlgorithmSeries> run_local_extras_sweep(
    const trace::TraceLibrary& library, const SweepSpec& sweep,
    const std::vector<int>& extra_candidate_counts,
    const ProgressFn& progress = {});

// Environment-variable helpers shared by the bench binaries:
// WADC_CONFIGS overrides the configuration count, WADC_SEED the base seed.
// Parsing is strict: the whole value must be a number in range, and
// malformed values (WADC_CONFIGS=8x, WADC_SEED=abc) are fatal (exit 2)
// instead of being silently truncated or ignored.
int env_configs(int fallback);
std::uint64_t env_seed(std::uint64_t fallback);

}  // namespace wadc::exp
