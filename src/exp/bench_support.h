// Shared scaffolding for the bench binaries: a --jobs/--bench-out command
// line, a wall-clock timer, and a tiny JSON perf report so the repo can
// accumulate a BENCH_*.json trajectory across PRs.
#pragma once

#include <chrono>
#include <memory>
#include <string>

#include "obs/profiler.h"

namespace wadc::exp {

struct BenchOptions {
  // Worker-count request passed to SweepSpec::jobs / resolve_jobs():
  // 0 = default (WADC_JOBS if set, else serial). --jobs=0 on the command
  // line resolves to all hardware threads at parse time.
  int jobs = 0;
  std::string bench_out;    // optional JSON perf-report path
  std::string profile_out;  // optional wall-clock profiler JSON path
};

// Parses --jobs=N, --bench-out=FILE, and --profile-out=FILE; --help prints
// usage and exits 0; unknown flags and malformed values are fatal (exit 2).
// `name` labels the usage text and perf reports.
BenchOptions parse_bench_options(int argc, char** argv, const char* name);

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct BenchReport {
  std::string name;
  int jobs = 1;
  long long runs = 0;  // simulated runs executed
  double wall_seconds = 0;
  // Machine/build context, so a BENCH_*.json is comparable across commits:
  // a jobs=4 number from a 1-core container and one from a 16-core desktop
  // are different experiments.
  int hardware_concurrency = 0;   // std::thread::hardware_concurrency()
  std::string build_type;         // CMAKE_BUILD_TYPE at compile time

  double runs_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(runs) / wall_seconds : 0;
  }
};

// "[bench] name: R runs in W s (X runs/s, jobs=J)" on stderr, keeping the
// figure data on stdout untouched.
void print_bench_report(const BenchReport& report);

// {"name": ..., "jobs": ..., "runs": ..., "wall_seconds": ...,
//  "runs_per_second": ...}
void write_bench_json_file(const BenchReport& report, const std::string& path);

// The whole main() scaffold every bench binary shares: parses the command
// line (exiting on --help / bad flags), starts the wall timer, accumulates
// the simulated-run count, and emits the report in finish(). Typical use:
//
//   exp::BenchHarness bench(argc, argv, "fig8_server_scaling");
//   sweep.jobs = bench.jobs();
//   ... bench.add_runs(4LL * sweep.configs); ...
//   return bench.finish();
class BenchHarness {
 public:
  BenchHarness(int argc, char** argv, const char* name);

  BenchHarness(const BenchHarness&) = delete;
  BenchHarness& operator=(const BenchHarness&) = delete;

  const BenchOptions& options() const { return options_; }
  // Worker-count request for SweepSpec::jobs / resolve_jobs().
  int jobs() const { return options_.jobs; }

  // Non-null iff --profile-out was given; hand to SweepSpec::profiler so
  // the sweep runner records per-phase/per-worker wall-clock breakdowns.
  obs::Profiler* profiler() { return profiler_.get(); }

  void add_runs(long long n) { runs_ += n; }

  // Prints the stderr report line, writes --bench-out JSON and
  // --profile-out JSON if requested, and returns main()'s exit code.
  // `resolved_jobs` records how many workers actually ran (default:
  // resolve_jobs(jobs()); benches that drive runs serially pass 1).
  int finish(int resolved_jobs = -1);

 private:
  std::string name_;
  BenchOptions options_;
  std::unique_ptr<obs::Profiler> profiler_;  // null unless --profile-out
  WallTimer timer_;
  long long runs_ = 0;
};

}  // namespace wadc::exp
