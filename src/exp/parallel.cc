#include "exp/parallel.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.h"

namespace wadc::exp {

namespace {

int hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

int env_jobs(int fallback) {
  const char* s = std::getenv("WADC_JOBS");
  if (s == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (*s == '\0' || *end != '\0' || errno != 0 || v < 0 || v > 1 << 20) {
    std::fprintf(stderr,
                 "invalid WADC_JOBS: '%s' (want a non-negative integer; "
                 "0 = all hardware threads)\n",
                 s);
    std::exit(2);
  }
  return v == 0 ? hardware_jobs() : static_cast<int>(v);
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  return env_jobs(/*fallback=*/1);
}

void parallel_for(int n, int jobs, const std::function<void(int)>& fn) {
  parallel_for(n, jobs, [&fn](int i, int /*worker*/) { fn(i); });
}

void parallel_for(int n, int jobs,
                  const std::function<void(int, int)>& fn) {
  WADC_ASSERT(n >= 0, "parallel_for over negative range: ", n);
  const int workers = std::min(jobs, n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  // Indices are claimed in chunks — one fetch_add per chunk, not per item —
  // and the shared atomics each get their own cache line so the claim
  // counter and the failure flag never false-share (with each other or
  // with the stack around them). The chunk size caps claim traffic at
  // roughly 16 claims per worker while still letting the pool rebalance
  // when cells run long.
  struct alignas(64) PaddedCounter {
    std::atomic<int> value{0};
  };
  struct alignas(64) PaddedFlag {
    std::atomic<bool> value{false};
  };
  const int chunk = std::max(1, n / (workers * 16));
  PaddedCounter next;
  PaddedFlag failed;
  std::mutex error_mu;
  std::exception_ptr first_error;
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        for (;;) {
          if (failed.value.load(std::memory_order_relaxed)) return;
          const int begin =
              next.value.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= n) return;
          const int end = std::min(n, begin + chunk);
          for (int i = begin; i < end; ++i) {
            if (failed.value.load(std::memory_order_relaxed)) return;
            try {
              fn(i, w);
            } catch (...) {
              std::lock_guard<std::mutex> lock(error_mu);
              if (!first_error) first_error = std::current_exception();
              failed.value.store(true, std::memory_order_relaxed);
            }
          }
        }
      });
    }
  }  // std::jthread joins on destruction
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wadc::exp
