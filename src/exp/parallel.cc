#include "exp/parallel.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.h"

namespace wadc::exp {

namespace {

int hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

int env_jobs(int fallback) {
  const char* s = std::getenv("WADC_JOBS");
  if (s == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (*s == '\0' || *end != '\0' || errno != 0 || v < 0 || v > 1 << 20) {
    std::fprintf(stderr,
                 "invalid WADC_JOBS: '%s' (want a non-negative integer; "
                 "0 = all hardware threads)\n",
                 s);
    std::exit(2);
  }
  return v == 0 ? hardware_jobs() : static_cast<int>(v);
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  return env_jobs(/*fallback=*/1);
}

void parallel_for(int n, int jobs, const std::function<void(int)>& fn) {
  parallel_for(n, jobs, [&fn](int i, int /*worker*/) { fn(i); });
}

void parallel_for(int n, int jobs,
                  const std::function<void(int, int)>& fn) {
  WADC_ASSERT(n >= 0, "parallel_for over negative range: ", n);
  const int workers = std::min(jobs, n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        for (;;) {
          if (failed.load(std::memory_order_relaxed)) return;
          const int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            fn(i, w);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
  }  // std::jthread joins on destruction
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wadc::exp
