// Network configuration sampling for the experiments.
//
// §4: "We generated the network configurations by different assignments of
// the Internet bandwidth traces to the links in a complete graph of nine
// nodes (eight servers and one client). The assignments were generated
// using a uniform random number generator." Experiments start "at noon" —
// each link gets a time offset into its two-day trace.
#pragma once

#include <cstdint>

#include "net/link_table.h"
#include "trace/library.h"

namespace wadc::exp {

struct NetworkConfigParams {
  // Offset into each trace at simulation time 0 (noon of day one).
  sim::SimTime trace_start_offset_seconds = 12 * 3600;
};

// Builds the link table for one configuration: every unordered pair of the
// `num_hosts` complete graph is assigned a uniformly random trace from the
// library. Deterministic in (library, seed).
net::LinkTable make_network_config(const trace::TraceLibrary& library,
                                   int num_hosts, std::uint64_t config_seed,
                                   const NetworkConfigParams& params = {});

}  // namespace wadc::exp
