#include "exp/export.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "core/algorithm_kind.h"
#include "exp/experiment.h"

namespace wadc::exp {

namespace {

void write_doubles(std::ostream& out, const std::vector<double>& xs) {
  out << "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out << ",";
    out << xs[i];
  }
  out << "]";
}

void write_ints(std::ostream& out, const std::vector<int>& xs) {
  out << "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out << ",";
    out << xs[i];
  }
  out << "]";
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

}  // namespace

void write_run_json(const dataflow::RunStats& stats, std::ostream& out) {
  out.precision(17);
  out << "{\n";
  if (!stats.backend.empty()) {
    // Only non-default backends are labeled, so sim-backend output stays
    // byte-identical to pre-backend builds (golden harness).
    out << "  \"backend\": \"" << stats.backend << "\",\n";
  }
  out << "  \"completed\": " << (stats.completed ? "true" : "false") << ",\n";
  out << "  \"completion_seconds\": " << stats.completion_seconds << ",\n";
  out << "  \"mean_interarrival_seconds\": "
      << stats.mean_interarrival_seconds() << ",\n";
  out << "  \"replans\": " << stats.replans << ",\n";
  out << "  \"barriers_initiated\": " << stats.barriers_initiated << ",\n";
  out << "  \"barriers_completed\": " << stats.barriers_completed << ",\n";
  out << "  \"messages_forwarded\": " << stats.messages_forwarded << ",\n";
  if (stats.failure_summary.active) {
    // Emitted only for fault-tolerant runs so fault-free output stays
    // byte-identical to what it was before fault injection existed.
    const dataflow::FailureSummary& fs = stats.failure_summary;
    out << "  \"failure_summary\": {\n";
    out << "    \"faults_injected\": " << fs.faults_injected << ",\n";
    out << "    \"host_crashes\": " << fs.host_crashes << ",\n";
    out << "    \"host_restarts\": " << fs.host_restarts << ",\n";
    out << "    \"link_blackouts\": " << fs.link_blackouts << ",\n";
    out << "    \"link_blackout_ends\": " << fs.link_blackout_ends << ",\n";
    out << "    \"transfers_failed\": " << fs.transfers_failed << ",\n";
    out << "    \"transfers_timed_out\": " << fs.transfers_timed_out << ",\n";
    out << "    \"transfer_retries\": " << fs.transfer_retries << ",\n";
    out << "    \"recovery_replans\": " << fs.recovery_replans << ",\n";
    out << "    \"repair_relocations\": " << fs.repair_relocations << ",\n";
    out << "    \"recovery_seconds_total\": " << fs.recovery_seconds_total
        << ",\n";
    out << "    \"mean_recovery_seconds\": " << fs.mean_recovery_seconds()
        << ",\n";
    out << "    \"abort_reason\": \"" << fs.abort_reason << "\"\n";
    out << "  },\n";
  }
  out << "  \"arrival_seconds\": ";
  write_doubles(out, stats.arrival_seconds);
  out << ",\n  \"relocations\": [";
  for (std::size_t i = 0; i < stats.relocation_trace.size(); ++i) {
    const auto& ev = stats.relocation_trace[i];
    if (i > 0) out << ",";
    out << "\n    {\"time\": " << ev.time << ", \"op\": " << ev.op
        << ", \"from\": " << ev.from << ", \"to\": " << ev.to << "}";
  }
  out << (stats.relocation_trace.empty() ? "]" : "\n  ]") << "\n}\n";
}

void write_run_json_file(const dataflow::RunStats& stats,
                         const std::string& path) {
  auto out = open_or_throw(path);
  write_run_json(stats, out);
}

void write_series_json(const std::vector<AlgorithmSeries>& series,
                       std::ostream& out) {
  out.precision(17);
  out << "[\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const AlgorithmSeries& s = series[i];
    if (i > 0) out << ",\n";
    out << "  {\n    \"algorithm\": \""
        << core::algorithm_name(s.algorithm) << "\",\n";
    out << "    \"local_extra_candidates\": " << s.local_extra_candidates
        << ",\n";
    out << "    \"speedup\": ";
    write_doubles(out, s.speedup);
    out << ",\n    \"completion_seconds\": ";
    write_doubles(out, s.completion_seconds);
    out << ",\n    \"mean_interarrival\": ";
    write_doubles(out, s.mean_interarrival);
    out << ",\n    \"relocations\": ";
    write_ints(out, s.relocations);
    out << "\n  }";
  }
  out << "\n]\n";
}

void write_series_json_file(const std::vector<AlgorithmSeries>& series,
                            const std::string& path) {
  auto out = open_or_throw(path);
  write_series_json(series, out);
}

void write_sessions_json(const session::SessionStats& stats,
                         std::ostream& out) {
  out.precision(17);
  out << "{\n";
  if (!stats.backend.empty()) {
    // Same contract as write_run_json: only non-default backends are
    // labeled, so sim-mode session artifacts are unchanged.
    out << "  \"backend\": \"" << stats.backend << "\",\n";
  }
  out << "  \"makespan_seconds\": " << stats.makespan_seconds() << ",\n";
  out << "  \"completed\": " << stats.completed_count() << ",\n";
  out << "  \"admitted\": " << stats.admitted_count() << ",\n";
  out << "  \"shed\": " << stats.shed_count() << ",\n";
  out << "  \"deferred\": " << stats.deferred_count() << ",\n";
  out << "  \"degraded\": " << stats.degraded_count() << ",\n";
  out << "  \"shed_fraction\": " << stats.shed_fraction() << ",\n";
  out << "  \"mean_response_seconds\": " << stats.mean_response_seconds()
      << ",\n";
  out << "  \"p95_response_seconds\": " << stats.p95_response_seconds()
      << ",\n";
  out << "  \"mean_queue_seconds\": " << stats.mean_queue_seconds() << ",\n";
  out << "  \"max_queue_seconds\": " << stats.max_queue_seconds() << ",\n";
  out << "  \"jain_fairness\": " << stats.jain_fairness() << ",\n";
  out << "  \"aggregate_throughput\": " << stats.aggregate_throughput()
      << ",\n";
  out << "  \"goodput_per_hour\": " << stats.goodput_per_hour() << ",\n";
  out << "  \"sessions\": [";
  const std::vector<session::SessionRecord>& sessions = stats.sessions();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const session::SessionRecord& s = sessions[i];
    if (i > 0) out << ",";
    out << "\n    {\"id\": " << s.id << ", \"client\": " << s.client
        << ", \"arrival_seconds\": " << s.arrival_seconds
        << ", \"admit_seconds\": " << s.admit_seconds
        << ", \"end_seconds\": " << s.end_seconds << ", \"completed\": "
        << (s.completed ? "true" : "false") << ", \"shed\": "
        << (s.shed ? "true" : "false") << ", \"deferred\": "
        << (s.deferred ? "true" : "false") << ", \"degraded\": "
        << (s.degraded ? "true" : "false") << ", \"images\": " << s.images
        << ", \"queue_seconds\": " << s.queue_seconds()
        << ", \"response_seconds\": " << s.response_seconds()
        << ", \"deadline_seconds\": " << s.deadline_seconds
        << ", \"predicted_response_seconds\": "
        << s.predicted_response_seconds
        << ", \"relocations\": " << s.relocations << "}";
  }
  out << (sessions.empty() ? "]" : "\n  ]") << "\n}\n";
}

void write_sessions_json_file(const session::SessionStats& stats,
                              const std::string& path) {
  auto out = open_or_throw(path);
  write_sessions_json(stats, out);
}

}  // namespace wadc::exp
