#include "exp/experiment.h"

#include <cstdlib>

#include "common/assert.h"
#include "dataflow/engine.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace wadc::exp {

dataflow::EngineParams ExperimentSpec::engine_params(
    std::uint64_t seed) const {
  dataflow::EngineParams ep = engine_base;
  ep.algorithm = algorithm;
  ep.relocation_period_seconds = relocation_period_seconds;
  ep.local_extra_candidates = local_extra_candidates;
  ep.seed = seed;
  ep.obs = obs;
  return ep;
}

RunResult run_experiment(const trace::TraceLibrary& library,
                         const ExperimentSpec& spec) {
  WADC_ASSERT(spec.num_servers >= 2, "need at least two servers");
  const int num_hosts = spec.num_servers + 1;

  // Construction order doubles as destruction-safety order: the engine is
  // destroyed first and tears down all coroutine frames while the objects
  // they reference are still alive.
  sim::Simulation sim;
  const net::LinkTable links = make_network_config(
      library, num_hosts, spec.config_seed, spec.config);
  net::Network network(sim, links, spec.network);
  monitor::MonitoringSystem monitoring(network, spec.monitor);
  if (spec.obs.enabled()) {
    network.set_obs(spec.obs);
    monitoring.set_obs(spec.obs);
  }
  const core::CombinationTree tree =
      core::CombinationTree::make(spec.tree_shape, spec.num_servers);

  workload::WorkloadParams wp = spec.workload;
  wp.iterations = spec.iterations;
  const workload::ImageWorkload workload(wp, spec.num_servers,
                                         spec.config_seed);

  dataflow::Engine engine(sim, network, monitoring, tree, workload,
                          spec.engine_params(spec.config_seed));

  RunResult result;
  result.stats = engine.run();
  result.completion_seconds = result.stats.completion_seconds;
  result.mean_interarrival_seconds = result.stats.mean_interarrival_seconds();
  return result;
}

namespace {

AlgorithmSeries run_series(const trace::TraceLibrary& library,
                           const SweepSpec& sweep,
                           core::AlgorithmKind algorithm, int extras,
                           const std::vector<double>& baseline_completion,
                           const ProgressFn& progress, int& done, int total) {
  AlgorithmSeries series;
  series.algorithm = algorithm;
  series.local_extra_candidates = extras;
  for (int c = 0; c < sweep.configs; ++c) {
    ExperimentSpec spec = sweep.experiment;
    spec.algorithm = algorithm;
    spec.local_extra_candidates = extras;
    spec.config_seed = sweep.base_seed + static_cast<std::uint64_t>(c);
    const RunResult r = run_experiment(library, spec);
    series.completion_seconds.push_back(r.completion_seconds);
    series.mean_interarrival.push_back(r.mean_interarrival_seconds);
    series.relocations.push_back(r.stats.relocations);
    if (!baseline_completion.empty()) {
      series.speedup.push_back(baseline_completion[static_cast<std::size_t>(c)] /
                               r.completion_seconds);
    }
    ++done;
    if (progress) progress(done, total);
  }
  return series;
}

}  // namespace

std::vector<AlgorithmSeries> run_sweep(
    const trace::TraceLibrary& library, const SweepSpec& sweep,
    const std::vector<core::AlgorithmKind>& algorithms,
    const ProgressFn& progress) {
  const int total = sweep.configs * (static_cast<int>(algorithms.size()) + 1);
  int done = 0;

  // Baseline first: download-all on every configuration.
  AlgorithmSeries baseline =
      run_series(library, sweep, core::AlgorithmKind::kDownloadAll,
                 /*extras=*/0, {}, progress, done, total);
  baseline.speedup.assign(baseline.completion_seconds.size(), 1.0);

  std::vector<AlgorithmSeries> out;
  for (const core::AlgorithmKind algorithm : algorithms) {
    if (algorithm == core::AlgorithmKind::kDownloadAll) {
      out.push_back(baseline);
      continue;
    }
    out.push_back(run_series(library, sweep, algorithm,
                             sweep.experiment.local_extra_candidates,
                             baseline.completion_seconds, progress, done,
                             total));
  }
  // Always expose the baseline at the end if it was not requested, so
  // callers can report absolute interarrival times.
  bool had_baseline = false;
  for (const core::AlgorithmKind a : algorithms) {
    if (a == core::AlgorithmKind::kDownloadAll) had_baseline = true;
  }
  if (!had_baseline) out.push_back(std::move(baseline));
  return out;
}

std::vector<AlgorithmSeries> run_local_extras_sweep(
    const trace::TraceLibrary& library, const SweepSpec& sweep,
    const std::vector<int>& extra_candidate_counts,
    const ProgressFn& progress) {
  const int total =
      sweep.configs * (static_cast<int>(extra_candidate_counts.size()) + 1);
  int done = 0;

  AlgorithmSeries baseline =
      run_series(library, sweep, core::AlgorithmKind::kDownloadAll,
                 /*extras=*/0, {}, progress, done, total);

  std::vector<AlgorithmSeries> out;
  for (const int k : extra_candidate_counts) {
    out.push_back(run_series(library, sweep, core::AlgorithmKind::kLocal, k,
                             baseline.completion_seconds, progress, done,
                             total));
  }
  return out;
}

int env_configs(int fallback) {
  if (const char* s = std::getenv("WADC_CONFIGS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

std::uint64_t env_seed(std::uint64_t fallback) {
  if (const char* s = std::getenv("WADC_SEED")) {
    const auto v = std::strtoull(s, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace wadc::exp
