#include "exp/experiment.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <iterator>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>

#include "cache/fabric.h"
#include "common/assert.h"
#include "dataflow/engine.h"
#include "exp/parallel.h"
#include "exp/timeline_sampler.h"
#include "fault/injector.h"
#include "net/network.h"
#include "net/realtime.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeline.h"
#include "obs/tracer.h"
#include "session/session_manager.h"
#include "sim/simulation.h"

namespace wadc::exp {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kSim:
      return "sim";
    case Backend::kTcp:
      return "tcp";
  }
  return "?";
}

dataflow::EngineParams ExperimentSpec::engine_params(
    std::uint64_t seed) const {
  dataflow::EngineParams ep = engine_base;
  ep.algorithm = algorithm;
  ep.relocation_period_seconds = relocation_period_seconds;
  ep.local_extra_candidates = local_extra_candidates;
  ep.seed = seed;
  ep.obs = obs;
  return ep;
}

namespace {

// Builds and attaches the realtime (tcp) backend when the spec asks for
// one. Returned handle must be destroyed before `sim` and `network` (it
// detaches itself); callers declare it after both.
std::unique_ptr<net::RealtimeBackend> make_backend(const ExperimentSpec& spec,
                                                   sim::Simulation& sim,
                                                   net::Network& network) {
  if (spec.backend != Backend::kTcp) return nullptr;
  auto backend = std::make_unique<net::RealtimeBackend>(spec.tcp_time_scale,
                                                        spec.tcp_rate_limit);
  backend->attach(sim, network);
  return backend;
}

// The body shared by both run_experiment overloads: everything downstream
// of the simulation/network pair, which the fresh-context overload builds
// on the stack and the epoch-reuse overload resets in place. Construction
// order doubles as destruction-safety order: the engine is destroyed first
// and tears down all coroutine frames while the objects they reference are
// still alive.
RunResult run_on(const ExperimentSpec& spec, sim::Simulation& sim,
                 net::Network& network) {
  const int num_hosts = spec.num_servers + 1;
  const bool faults = !spec.fault.empty();
  // Declared before the monitoring system and the engine: the injector must
  // outlive the engine (which holds a listener into it) and is destroyed
  // after the engine tears down its coroutine frames.
  std::unique_ptr<fault::FaultInjector> injector;
  if (faults) {
    const std::string problem = spec.fault.validate(num_hosts);
    WADC_ASSERT(problem.empty(), "bad fault spec: ", problem);
    injector = std::make_unique<fault::FaultInjector>(
        sim, network, spec.fault.build(num_hosts, spec.config_seed),
        spec.config_seed);
    if (spec.obs.enabled()) injector->set_obs(spec.obs);
  }

  monitor::MonitorParams mp = spec.monitor;
  if (faults && mp.probe_timeout_seconds == 0) {
    // A probe against a crashed host must resolve, not hang the planner.
    mp.probe_timeout_seconds = 120;
  }
  monitor::MonitoringSystem monitoring(network, mp);
  if (spec.obs.enabled()) {
    network.set_obs(spec.obs);
    monitoring.set_obs(spec.obs);
  }
  const core::CombinationTree tree =
      core::CombinationTree::make(spec.tree_shape, spec.num_servers);

  workload::WorkloadParams wp = spec.workload;
  wp.iterations = spec.iterations;
  const workload::ImageWorkload workload(wp, spec.num_servers,
                                         spec.config_seed);

  std::unique_ptr<cache::CacheFabric> fabric;
  if (spec.cache.enabled) {
    const std::string problem = spec.cache.validate();
    WADC_ASSERT(problem.empty(), "bad cache config: ", problem);
    fabric = std::make_unique<cache::CacheFabric>(spec.cache, num_hosts,
                                                  &monitoring, spec.obs);
  }

  dataflow::EngineParams ep = spec.engine_params(spec.config_seed);
  ep.fault_injector = injector.get();
  ep.cache_fabric = fabric.get();
  dataflow::Engine engine(sim, network, monitoring, tree, workload, ep);
  if (injector) injector->arm();

  std::unique_ptr<TimelineSampler> sampler;
  if (spec.obs.timeline != nullptr) {
    sampler = std::make_unique<TimelineSampler>(
        sim, network, monitoring, tree, /*sessions=*/nullptr,
        *spec.obs.timeline, spec.timeline_sample_seconds,
        [&engine] { return engine.run_finished(); });
    sampler->start();
  }

  RunResult result;
  result.stats = engine.run();
  if (spec.backend != Backend::kSim) {
    result.stats.backend = backend_name(spec.backend);
  }
  result.completion_seconds = result.stats.completion_seconds;
  result.mean_interarrival_seconds = result.stats.mean_interarrival_seconds();
  return result;
}

}  // namespace

RunResult run_experiment(const trace::TraceLibrary& library,
                         const ExperimentSpec& spec) {
  WADC_ASSERT(spec.num_servers >= 2, "need at least two servers");
  const int num_hosts = spec.num_servers + 1;
  sim::Simulation sim;
  const net::LinkTable links = make_network_config(
      library, num_hosts, spec.config_seed, spec.config);
  net::Network network(sim, links, spec.network);
  const auto backend = make_backend(spec, sim, network);
  return run_on(spec, sim, network);
}

RunResult run_experiment(const trace::TraceLibrary& library,
                         const ExperimentSpec& spec, RunContext& ctx) {
  WADC_ASSERT(spec.num_servers >= 2, "need at least two servers");
  // Epoch reuse exists for deterministic sweeps; a tcp run is a single
  // wall-clock execution and opens real sockets per run, so route it
  // through the fresh-context path instead of threading socket lifetime
  // through RunContext.
  if (spec.backend != Backend::kSim) return run_experiment(library, spec);
  const int num_hosts = spec.num_servers + 1;

  // Everything allocated from here to the end of the run comes from the
  // worker's arena (coroutine frames and Callback spills always; the rest
  // whenever WADC_POOLED_GLOBAL_NEW is on).
  sim::Arena::Scope mem(&ctx.arena_);

  // Epoch boundary: rewind the kernel objects instead of reconstructing
  // them. The previous run's engine already tore down every process frame,
  // so reset() only rewinds counters and clears queues, keeping capacity.
  ctx.sim_.reset();
  ctx.links_ = make_network_config(library, num_hosts, spec.config_seed,
                                   spec.config);
  if (ctx.network_ == nullptr) {
    ctx.network_ =
        std::make_unique<net::Network>(ctx.sim_, *ctx.links_, spec.network);
  } else {
    ctx.network_->reset(*ctx.links_, spec.network);
  }

  RunResult result = run_on(spec, ctx.sim_, *ctx.network_);

  // Recycle the run's memory. Anything that escaped (the result, recorded
  // obs data) keeps the arena's outstanding count nonzero, in which case
  // reset() skips the bump rewind and reuse continues via the free lists —
  // still allocation-free once warm.
  ctx.arena_.reset();
  return result;
}

session::SessionStats run_session_experiment(
    const trace::TraceLibrary& library, const ExperimentSpec& spec,
    const session::SessionSpec& sessions) {
  WADC_ASSERT(spec.num_servers >= 2, "need at least two servers");
  const int num_hosts = spec.num_servers + 1;

  // Construction order doubles as destruction-safety order: the manager
  // (which owns every session's engine) is destroyed first, and the first
  // engine destructor tears down all coroutine frames while the shared
  // objects they reference are still alive.
  sim::Simulation sim;
  const net::LinkTable links = make_network_config(
      library, num_hosts, spec.config_seed, spec.config);
  net::Network network(sim, links, spec.network);
  const auto backend = make_backend(spec, sim, network);

  const bool faults = !spec.fault.empty();
  std::unique_ptr<fault::FaultInjector> injector;
  if (faults) {
    const std::string problem = spec.fault.validate(num_hosts);
    WADC_ASSERT(problem.empty(), "bad fault spec: ", problem);
    injector = std::make_unique<fault::FaultInjector>(
        sim, network, spec.fault.build(num_hosts, spec.config_seed),
        spec.config_seed);
    if (spec.obs.enabled()) injector->set_obs(spec.obs);
  }

  monitor::MonitorParams mp = spec.monitor;
  if (faults && mp.probe_timeout_seconds == 0) {
    // A probe against a crashed host must resolve, not hang the planner.
    mp.probe_timeout_seconds = 120;
  }
  monitor::MonitoringSystem monitoring(network, mp);
  if (spec.obs.enabled()) {
    network.set_obs(spec.obs);
    monitoring.set_obs(spec.obs);
  }
  const core::CombinationTree tree =
      core::CombinationTree::make(spec.tree_shape, spec.num_servers);

  workload::WorkloadParams wp = spec.workload;
  wp.iterations = spec.iterations;
  const workload::ImageWorkload workload(wp, spec.num_servers,
                                         spec.config_seed);

  // One cache fabric shared by every concurrent session's engine: this is
  // where cross-session reuse comes from.
  std::unique_ptr<cache::CacheFabric> fabric;
  if (spec.cache.enabled) {
    const std::string problem = spec.cache.validate();
    WADC_ASSERT(problem.empty(), "bad cache config: ", problem);
    fabric = std::make_unique<cache::CacheFabric>(spec.cache, num_hosts,
                                                  &monitoring, spec.obs);
  }

  dataflow::EngineParams ep = spec.engine_params(spec.config_seed);
  ep.fault_injector = injector.get();
  ep.cache_fabric = fabric.get();
  session::SessionManager manager(sim, network, monitoring, tree, workload,
                                  ep, sessions, spec.config_seed);
  if (injector) injector->arm();

  std::unique_ptr<TimelineSampler> sampler;
  if (spec.obs.timeline != nullptr) {
    sampler = std::make_unique<TimelineSampler>(
        sim, network, monitoring, tree, &manager, *spec.obs.timeline,
        spec.timeline_sample_seconds,
        [&manager] { return manager.all_finished(); });
    sampler->start();
  }
  session::SessionStats stats = manager.run();
  stats.network_bytes_delivered = network.bytes_delivered();
  if (spec.backend != Backend::kSim) {
    stats.backend = backend_name(spec.backend);
  }
  return stats;
}

namespace {

// One row of a sweep: an algorithm/extras pair run on every configuration.
struct SeriesDesc {
  core::AlgorithmKind algorithm;
  int extras;
};

// Private per-run observability sinks, merged deterministically after all
// workers join.
struct CellObs {
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::DecisionLog> decisions;
  std::unique_ptr<obs::Timeline> timeline;
};

// Process-lifetime RunContext per sweep-worker index. Deliberately leaked:
// recorded obs data and run results escape a run still pointing into the
// worker's arena, and sweep callers may hold them arbitrarily long, so the
// arenas must never be destroyed. Contexts are exclusive to one worker per
// sweep and sweeps do not overlap, so the only synchronization needed is
// around pool growth.
RunContext& sweep_worker_context(int worker) {
  static auto* contexts = new std::deque<RunContext>();
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  while (static_cast<int>(contexts->size()) <= worker) {
    contexts->emplace_back();
  }
  return (*contexts)[static_cast<std::size_t>(worker)];
}

// Runs descs.size() x sweep.configs independent cells on a fixed-size
// worker pool. descs[0] must be the download-all baseline; every series'
// speedup is measured against it. Cells share only the read-only trace
// library and the (copied-per-cell) spec, and write results into
// index-keyed slots, so the returned series — and the merged obs output —
// are byte-identical for every worker count.
std::vector<AlgorithmSeries> run_cells(const trace::TraceLibrary& library,
                                       const SweepSpec& sweep,
                                       const std::vector<SeriesDesc>& descs,
                                       const ProgressFn& progress) {
  // Each worker hands run_experiment a value copy of the spec; the library
  // reference must stay shareable without synchronization.
  static_assert(
      std::is_nothrow_move_constructible_v<RunResult> ||
          std::is_copy_constructible_v<RunResult>,
      "RunResult must be slot-storable");

  const int configs = sweep.configs;
  const int num_series = static_cast<int>(descs.size());
  const int total = configs * num_series;
  const int jobs = resolve_jobs(sweep.jobs);

  std::vector<std::vector<RunResult>> results(
      static_cast<std::size_t>(num_series),
      std::vector<RunResult>(static_cast<std::size_t>(configs)));

  const obs::Obs sink = sweep.experiment.obs;
  std::vector<CellObs> cell_obs(sink.enabled()
                                    ? static_cast<std::size_t>(total)
                                    : 0);

  obs::Profiler* const prof = sweep.profiler;
  std::mutex progress_mu;
  int done = 0;

  parallel_for(total, jobs, [&](int idx, int worker) {
    const int s = idx / configs;
    const int c = idx % configs;
    ExperimentSpec spec = sweep.experiment;
    {
      obs::Profiler::Scope setup_scope(prof, "setup", worker);
      spec.algorithm = descs[static_cast<std::size_t>(s)].algorithm;
      spec.local_extra_candidates =
          descs[static_cast<std::size_t>(s)].extras;
      spec.config_seed = sweep.base_seed + static_cast<std::uint64_t>(c);
      if (sink.enabled()) {
        // Record into private sinks; merged below in deterministic order.
        CellObs& slot = cell_obs[static_cast<std::size_t>(idx)];
        spec.obs = {};
        if (sink.tracer != nullptr) {
          slot.tracer = std::make_unique<obs::Tracer>();
          spec.obs.tracer = slot.tracer.get();
        }
        if (sink.metrics != nullptr) {
          slot.metrics = std::make_unique<obs::MetricsRegistry>();
          spec.obs.metrics = slot.metrics.get();
        }
        if (sink.decisions != nullptr) {
          slot.decisions = std::make_unique<obs::DecisionLog>();
          spec.obs.decisions = slot.decisions.get();
        }
        if (sink.timeline != nullptr) {
          slot.timeline = std::make_unique<obs::Timeline>();
          spec.obs.timeline = slot.timeline.get();
        }
      }
    }
    {
      obs::Profiler::Scope run_scope(prof, "engine_run", worker);
      RunContext& ctx = sweep_worker_context(worker);
      const sim::ArenaStats before = ctx.arena_stats();
      const sim::GlobalAllocStats& tls = sim::global_alloc_stats();
      const std::uint64_t news_before = tls.global_news;
      results[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)] =
          run_experiment(library, spec, ctx);
      if (prof != nullptr) {
        // Allocator traffic per cell. Warmth-dependent (a cold context
        // mallocs its blocks, a warm one doesn't), so these go to the
        // profiler only — never to the deterministic metrics channel, or
        // goldens would differ across jobs counts.
        const sim::ArenaStats& after = ctx.arena_stats();
        prof->count("sim.alloc.arena_allocs", after.allocs - before.allocs);
        prof->count("sim.alloc.freelist_hits",
                    after.freelist_hits - before.freelist_hits);
        prof->count("sim.alloc.spills", after.spills - before.spills);
        prof->count("sim.alloc.block_allocs",
                    after.block_allocs - before.block_allocs);
        prof->count("sim.alloc.global_news", tls.global_news - news_before);
      }
    }
    if (progress) {
      if (prof != nullptr) prof->count("progress_lock_acquisitions");
      std::lock_guard<std::mutex> lock(progress_mu);
      progress(++done, total);
    }
  });

  // Merge per-run observability into the sweep-level sink in fixed
  // (series, configuration) order — the order the serial path visits runs —
  // independent of how workers interleaved.
  if (sink.enabled()) {
    obs::Profiler::Scope merge_scope(prof, "obs_merge");
    for (int idx = 0; idx < total; ++idx) {
      CellObs& slot = cell_obs[static_cast<std::size_t>(idx)];
      if (slot.tracer) sink.tracer->merge_from(std::move(*slot.tracer));
      if (slot.metrics) sink.metrics->merge_from(*slot.metrics);
      if (slot.decisions) {
        sink.decisions->merge_from(std::move(*slot.decisions));
      }
      if (slot.timeline) sink.timeline->merge_from(std::move(*slot.timeline));
    }
  }

  obs::Profiler::Scope collect_scope(prof, "result_collect");
  const std::vector<RunResult>& baseline = results[0];
  std::vector<AlgorithmSeries> out(static_cast<std::size_t>(num_series));
  for (int s = 0; s < num_series; ++s) {
    AlgorithmSeries& series = out[static_cast<std::size_t>(s)];
    series.algorithm = descs[static_cast<std::size_t>(s)].algorithm;
    series.local_extra_candidates = descs[static_cast<std::size_t>(s)].extras;
    for (int c = 0; c < configs; ++c) {
      const RunResult& r =
          results[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)];
      series.completion_seconds.push_back(r.completion_seconds);
      series.mean_interarrival.push_back(r.mean_interarrival_seconds);
      series.relocations.push_back(r.stats.relocations);
      series.speedup.push_back(
          s == 0 ? 1.0
                 : baseline[static_cast<std::size_t>(c)].completion_seconds /
                       r.completion_seconds);
    }
  }
  return out;
}

}  // namespace

std::vector<AlgorithmSeries> run_sweep(
    const trace::TraceLibrary& library, const SweepSpec& sweep,
    const std::vector<core::AlgorithmKind>& algorithms,
    const ProgressFn& progress) {
  // Baseline first (§5: "the download-all placement algorithm is used as
  // the base-case"); it is run exactly once even when requested explicitly.
  std::vector<SeriesDesc> descs{{core::AlgorithmKind::kDownloadAll, 0}};
  for (const core::AlgorithmKind algorithm : algorithms) {
    if (algorithm != core::AlgorithmKind::kDownloadAll) {
      descs.push_back({algorithm, sweep.experiment.local_extra_candidates});
    }
  }
  std::vector<AlgorithmSeries> cells =
      run_cells(library, sweep, descs, progress);

  std::vector<AlgorithmSeries> out;
  out.reserve(algorithms.size() + 1);
  std::size_t next_cell = 1;
  bool had_baseline = false;
  for (const core::AlgorithmKind algorithm : algorithms) {
    if (algorithm == core::AlgorithmKind::kDownloadAll) {
      out.push_back(cells[0]);
      had_baseline = true;
    } else {
      out.push_back(std::move(cells[next_cell++]));
    }
  }
  // Always expose the baseline at the end if it was not requested, so
  // callers can report absolute interarrival times.
  if (!had_baseline) out.push_back(std::move(cells[0]));
  return out;
}

std::vector<AlgorithmSeries> run_local_extras_sweep(
    const trace::TraceLibrary& library, const SweepSpec& sweep,
    const std::vector<int>& extra_candidate_counts,
    const ProgressFn& progress) {
  std::vector<SeriesDesc> descs{{core::AlgorithmKind::kDownloadAll, 0}};
  for (const int k : extra_candidate_counts) {
    descs.push_back({core::AlgorithmKind::kLocal, k});
  }
  std::vector<AlgorithmSeries> cells =
      run_cells(library, sweep, descs, progress);
  return {std::make_move_iterator(cells.begin() + 1),
          std::make_move_iterator(cells.end())};
}

int env_configs(int fallback) {
  const char* s = std::getenv("WADC_CONFIGS");
  if (s == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (*s == '\0' || *end != '\0' || errno != 0 || v <= 0 || v > INT_MAX) {
    std::fprintf(stderr,
                 "invalid WADC_CONFIGS: '%s' (want a positive integer)\n", s);
    std::exit(2);
  }
  return static_cast<int>(v);
}

std::uint64_t env_seed(std::uint64_t fallback) {
  const char* s = std::getenv("WADC_SEED");
  if (s == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (*s == '\0' || *end != '\0' || errno != 0 || s[0] == '-') {
    std::fprintf(stderr,
                 "invalid WADC_SEED: '%s' (want a non-negative integer)\n",
                 s);
    std::exit(2);
  }
  return v;
}

}  // namespace wadc::exp
