// Fixed-size worker pool for the embarrassingly parallel experiment
// sweeps: every (network-configuration x algorithm) cell builds its own
// sim::Simulation / net::Network / dataflow::Engine, shares only the
// read-only trace::TraceLibrary, and writes its result into an index-keyed
// slot — so parallel execution is byte-identical to serial.
#pragma once

#include <functional>

namespace wadc::exp {

// Number of workers to use for a sweep. `requested` > 0 is taken as-is;
// 0 means "default": the WADC_JOBS environment variable if set (where 0
// selects all hardware threads), otherwise 1 (serial).
int resolve_jobs(int requested);

// WADC_JOBS override with strict parsing: a non-negative integer, where 0
// selects all hardware threads. Garbage is fatal (exit 2), never silently
// ignored.
int env_jobs(int fallback);

// Runs fn(i) exactly once for every i in [0, n), on up to `jobs` worker
// threads (std::jthread). fn must only write to slots keyed by its index.
// The first exception thrown by fn stops new work from being claimed and
// is rethrown here after all workers join.
void parallel_for(int n, int jobs, const std::function<void(int)>& fn);

// Worker-aware variant: fn(i, worker) additionally receives the index of
// the pool worker executing the item (0-based; the serial path — one
// worker or fewer items than workers — always reports worker 0). Used by
// the sweep profiler to break phase wall-clock down per worker.
void parallel_for(int n, int jobs,
                  const std::function<void(int, int)>& fn);

}  // namespace wadc::exp
