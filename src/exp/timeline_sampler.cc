#include "exp/timeline_sampler.h"

#include <utility>

#include "common/assert.h"
#include "monitor/bandwidth_cache.h"

namespace wadc::exp {

TimelineSampler::TimelineSampler(sim::Simulation& sim,
                                 const net::Network& network,
                                 const monitor::MonitoringSystem& monitoring,
                                 const core::CombinationTree& tree,
                                 const session::SessionManager* sessions,
                                 obs::Timeline& out,
                                 sim::SimTime interval_seconds,
                                 std::function<bool()> finished)
    : sim_(sim),
      network_(network),
      monitoring_(monitoring),
      tree_(tree),
      sessions_(sessions),
      out_(out),
      interval_(interval_seconds),
      finished_(std::move(finished)) {
  WADC_ASSERT(interval_ > 0, "timeline sample interval must be positive, got ",
              interval_);
}

void TimelineSampler::start() {
  sample();
  sim_.schedule_in(interval_, [this] { tick(); });
}

void TimelineSampler::tick() {
  if (finished_ && finished_()) return;
  sample();
  sim_.schedule_in(interval_, [this] { tick(); });
}

void TimelineSampler::sample() {
  const sim::SimTime now = sim_.now();
  const net::HostId client = tree_.client_host();
  const net::LinkTable& links = network_.links();
  const monitor::BandwidthCache& client_cache = monitoring_.cache(client);

  // Host rows: what the client believes about each host vs the truth, plus
  // the host NIC's in-flight / queued transfer counts.
  for (net::HostId h = 0; h < network_.num_hosts(); ++h) {
    obs::Timeline::Row row;
    row.t = now;
    row.kind = "host";
    row.id = h;
    if (h != client && links.has_link(client, h)) {
      row.truth_bw = links.bandwidth_at(client, h, now);
      if (const std::optional<monitor::Sample> s =
              client_cache.lookup_any_age(client, h)) {
        row.est_bw = s->bandwidth;
        row.est_age = now - s->measured_at;
      }
    }
    row.active = network_.host_active_transfers(h);
    row.queued = network_.host_pending_transfers(h);
    out_.add(row);
  }

  // One net row: global transport state.
  {
    obs::Timeline::Row row;
    row.t = now;
    row.kind = "net";
    row.active = network_.active_transfer_count();
    row.queued = static_cast<int>(network_.pending_count());
    row.bytes = network_.bytes_delivered();
    out_.add(row);
  }

  // Session rows: every session the manager has seen so far.
  if (sessions_ != nullptr) {
    for (int id = 0; id < sessions_->known_sessions(); ++id) {
      obs::Timeline::Row row;
      row.t = now;
      row.kind = "session";
      row.id = id;
      row.state = sessions_->session_state(id);
      row.queued = sessions_->queued_sessions();
      row.images = sessions_->session_images(id);
      row.bytes = network_.session_bytes_delivered(id);
      out_.add(row);
    }
  }
}

}  // namespace wadc::exp
