// Drives obs::Timeline from the simulation event loop.
//
// The Timeline itself (obs/timeline.h) is a pure data container — the obs
// layer may depend only on common+sim. Reading network / monitoring /
// session state to fill it is the experiment harness's job, so the sampling
// loop lives here: a self-rescheduling simulation event that, every
// `interval_seconds` of *simulated* time, appends one snapshot (host rows,
// a net row, and session rows when a SessionManager is attached) and stops
// once `finished()` reports the run complete.
//
// The sampler only reads state, so attaching it never changes a run's
// results; because it is driven purely by sim time, its output is
// byte-identical across repeated runs and worker counts. Leftover sampling
// events after the simulation stops are discarded with the event queue —
// the finished() predicate is for clean data, not liveness.
#pragma once

#include <functional>

#include "core/combination_tree.h"
#include "monitor/monitoring_system.h"
#include "net/network.h"
#include "obs/timeline.h"
#include "session/session_manager.h"
#include "sim/simulation.h"

namespace wadc::exp {

class TimelineSampler {
 public:
  // `sessions` is null for single-session runs. All referenced objects must
  // outlive the simulation's event queue (the usual stack order works: the
  // sampler is created last and destroyed first, and pending events die
  // with the Simulation).
  TimelineSampler(sim::Simulation& sim, const net::Network& network,
                  const monitor::MonitoringSystem& monitoring,
                  const core::CombinationTree& tree,
                  const session::SessionManager* sessions,
                  obs::Timeline& out, sim::SimTime interval_seconds,
                  std::function<bool()> finished);

  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  // Takes the first sample at the current simulation time and schedules the
  // rest. Call once, before Simulation::run().
  void start();

 private:
  void tick();
  void sample();

  sim::Simulation& sim_;
  const net::Network& network_;
  const monitor::MonitoringSystem& monitoring_;
  const core::CombinationTree& tree_;
  const session::SessionManager* sessions_;
  obs::Timeline& out_;
  sim::SimTime interval_;
  std::function<bool()> finished_;
};

}  // namespace wadc::exp
