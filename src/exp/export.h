// Machine-readable export of run results.
//
// Writes a RunStats (arrival times, relocation trace, adaptation counters)
// or a whole sweep as JSON so results can be plotted or post-processed
// outside the harness. No external JSON dependency: the emitter covers the
// few types we need.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dataflow/run_stats.h"
#include "session/session_stats.h"

namespace wadc::exp {

struct AlgorithmSeries;  // exp/experiment.h

// JSON object with completion, arrivals[], relocations[] ({time, op, from,
// to}), and the adaptation counters.
void write_run_json(const dataflow::RunStats& stats, std::ostream& out);
void write_run_json_file(const dataflow::RunStats& stats,
                         const std::string& path);

// JSON array of series objects: {algorithm, extras, speedup[],
// completion_seconds[], mean_interarrival[], relocations[]}.
void write_series_json(const std::vector<AlgorithmSeries>& series,
                       std::ostream& out);
void write_series_json_file(const std::vector<AlgorithmSeries>& series,
                            const std::string& path);

// JSON object for a multi-client session run: the aggregate metrics
// (makespan, mean/p95 response, queueing, Jain fairness, throughput) plus
// one record per session.
void write_sessions_json(const session::SessionStats& stats,
                         std::ostream& out);
void write_sessions_json_file(const session::SessionStats& stats,
                              const std::string& path);

}  // namespace wadc::exp
