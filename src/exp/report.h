// Text reporting helpers for the bench binaries: they print the same
// series/rows the paper's figures plot.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.h"

namespace wadc::exp {

struct SeriesStats {
  double mean = 0;
  double median = 0;
  double p10 = 0;
  double p90 = 0;
};

SeriesStats stats_of(const std::vector<double>& xs);

// Prints "config-rank <series...>" rows with configurations sorted by the
// values of `sort_by` (the paper sorts each graph by one algorithm's
// performance to make the curves comparable).
void print_sorted_series(const std::string& header,
                         const std::vector<std::string>& names,
                         const std::vector<std::vector<double>>& series,
                         std::size_t sort_by);

// One summary line per series: mean/median/p10/p90.
void print_summary(const std::vector<std::string>& names,
                   const std::vector<std::vector<double>>& series,
                   const std::string& unit);

}  // namespace wadc::exp
