#include "fault/spec_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wadc::fault {
namespace {

[[noreturn]] void fail(int line_no, const std::string& why) {
  throw std::runtime_error("fault spec line " + std::to_string(line_no) +
                           ": " + why);
}

double read_double(std::istringstream& in, int line_no, const char* what) {
  double v = 0;
  if (!(in >> v)) fail(line_no, std::string("expected ") + what);
  return v;
}

int read_int(std::istringstream& in, int line_no, const char* what) {
  int v = 0;
  if (!(in >> v)) fail(line_no, std::string("expected ") + what);
  return v;
}

void expect_end(std::istringstream& in, int line_no) {
  std::string extra;
  if (in >> extra) fail(line_no, "unexpected trailing token '" + extra + "'");
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  std::istringstream lines(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(lines, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream in(raw);
    std::string keyword;
    if (!(in >> keyword)) continue;  // blank or comment-only line

    if (keyword == "drop") {
      spec.drop_probability = read_double(in, line_no, "drop probability");
      expect_end(in, line_no);
    } else if (keyword == "crash") {
      HostCrash c;
      c.host = read_int(in, line_no, "host id");
      c.at = read_double(in, line_no, "crash time");
      double restart = 0;
      if (in >> restart) c.restart_at = restart;
      expect_end(in, line_no);
      spec.crashes.push_back(c);
    } else if (keyword == "blackout") {
      LinkBlackout b;
      b.a = read_int(in, line_no, "host id");
      b.b = read_int(in, line_no, "host id");
      b.begin = read_double(in, line_no, "blackout begin");
      b.end = read_double(in, line_no, "blackout end");
      expect_end(in, line_no);
      spec.blackouts.push_back(b);
    } else if (keyword == "rate") {
      std::string what;
      if (!(in >> what)) fail(line_no, "expected 'crash' or 'blackout'");
      if (what == "crash") {
        spec.random.crash_rate_per_hour =
            read_double(in, line_no, "crash rate per hour");
        spec.random.mean_downtime_seconds =
            read_double(in, line_no, "mean downtime seconds");
      } else if (what == "blackout") {
        spec.random.blackout_rate_per_hour =
            read_double(in, line_no, "blackout rate per hour");
        spec.random.mean_blackout_seconds =
            read_double(in, line_no, "mean blackout seconds");
      } else {
        fail(line_no, "unknown rate kind '" + what + "'");
      }
      expect_end(in, line_no);
    } else if (keyword == "horizon") {
      spec.random.horizon_seconds =
          read_double(in, line_no, "horizon seconds");
      expect_end(in, line_no);
    } else if (keyword == "protect_client") {
      spec.random.protect_client = read_int(in, line_no, "0 or 1") != 0;
      expect_end(in, line_no);
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  return spec;
}

FaultSpec load_fault_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open fault spec: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_fault_spec(buffer.str());
}

}  // namespace wadc::fault
