#include "fault/injector.h"

#include <algorithm>

#include "common/assert.h"

namespace wadc::fault {

const char* fault_event_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kHostDown:
      return "crash";
    case FaultEvent::Kind::kHostUp:
      return "restart";
    case FaultEvent::Kind::kBlackoutBegin:
      return "blackout_begin";
    case FaultEvent::Kind::kBlackoutEnd:
      return "blackout_end";
  }
  return "unknown";
}

FaultInjector::FaultInjector(sim::Simulation& sim, net::Network& network,
                             FaultSchedule schedule, std::uint64_t seed)
    : sim_(sim),
      network_(network),
      schedule_(std::move(schedule)),
      seed_(seed) {
  using Kind = FaultEvent::Kind;
  for (const HostCrash& c : schedule_.crashes) {
    events_.push_back(
        FaultEvent{Kind::kHostDown, c.host, net::kInvalidHost,
                   net::kInvalidHost, c.at});
    if (c.restart_at != sim::kTimeInfinity) {
      events_.push_back(
          FaultEvent{Kind::kHostUp, c.host, net::kInvalidHost,
                     net::kInvalidHost, c.restart_at});
    }
  }
  for (const LinkBlackout& b : schedule_.blackouts) {
    events_.push_back(
        FaultEvent{Kind::kBlackoutBegin, net::kInvalidHost, b.a, b.b,
                   b.begin});
    if (b.end != sim::kTimeInfinity) {
      events_.push_back(
          FaultEvent{Kind::kBlackoutEnd, net::kInvalidHost, b.a, b.b, b.end});
    }
  }
  // Stable: equal-time events fire in flatten order, deterministically.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.time < y.time;
                   });
}

void FaultInjector::add_listener(Listener listener) {
  listeners_.push_back(std::move(listener));
}

void FaultInjector::arm() {
  WADC_ASSERT(!armed_, "FaultInjector armed twice");
  armed_ = true;
  if (schedule_.drop_probability > 0) {
    network_.set_drop_probability(schedule_.drop_probability, seed_);
  }
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const sim::SimTime t = events_[i].time;
    WADC_ASSERT(t >= sim_.now(), "fault scheduled in the past");
    auto fire = [this, i] { apply(i); };
    static_assert(sim::Callback::fits_inline<decltype(fire)>(),
                  "fault events must stay allocation-free");
    sim_.schedule_at(t, fire);
  }
}

bool FaultInjector::host_restarts_after(net::HostId host,
                                        sim::SimTime t) const {
  for (const FaultEvent& ev : events_) {
    if (ev.kind == FaultEvent::Kind::kHostUp && ev.host == host &&
        ev.time > t) {
      return true;
    }
  }
  return false;
}

void FaultInjector::apply(std::size_t index) {
  using Kind = FaultEvent::Kind;
  const FaultEvent& ev = events_[index];
  switch (ev.kind) {
    case Kind::kHostDown:
      network_.set_host_alive(ev.host, false);
      if (obs_.metrics) {
        if (!crash_counter_) {
          crash_counter_ = &obs_.metrics->counter("fault.crashes");
        }
        crash_counter_->add();
      }
      if (obs_.tracer) {
        obs_.tracer->instant("fault", "crash", ev.host, obs::kControlLane,
                             ev.time, {{"host", ev.host}});
      }
      break;
    case Kind::kHostUp:
      network_.set_host_alive(ev.host, true);
      if (obs_.metrics) {
        if (!restart_counter_) {
          restart_counter_ = &obs_.metrics->counter("fault.restarts");
        }
        restart_counter_->add();
      }
      if (obs_.tracer) {
        obs_.tracer->instant("fault", "restart", ev.host, obs::kControlLane,
                             ev.time, {{"host", ev.host}});
      }
      break;
    case Kind::kBlackoutBegin:
      network_.set_link_blackout(ev.a, ev.b, true);
      if (obs_.metrics) {
        if (!blackout_counter_) {
          blackout_counter_ = &obs_.metrics->counter("fault.blackouts");
        }
        blackout_counter_->add();
      }
      if (obs_.tracer) {
        obs_.tracer->instant("fault", "blackout_begin", ev.a,
                             obs::kControlLane, ev.time,
                             {{"a", ev.a}, {"b", ev.b}});
      }
      break;
    case Kind::kBlackoutEnd:
      network_.set_link_blackout(ev.a, ev.b, false);
      if (obs_.metrics) {
        if (!blackout_end_counter_) {
          blackout_end_counter_ =
              &obs_.metrics->counter("fault.blackout_ends");
        }
        blackout_end_counter_->add();
      }
      if (obs_.tracer) {
        obs_.tracer->instant("fault", "blackout_end", ev.a, obs::kControlLane,
                             ev.time, {{"a", ev.a}, {"b", ev.b}});
      }
      break;
  }
  ++events_injected_;
  for (const Listener& listener : listeners_) listener(ev);
}

}  // namespace wadc::fault
