// Drives a FaultSchedule into a live simulation.
//
// arm() flattens the schedule into a time-sorted event list and schedules
// one kernel event per fault. When a fault fires, the injector first mutates
// the network (kill/revive a host, begin/end a blackout), then notifies
// listeners — so recovery code always observes the post-fault network.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_schedule.h"
#include "net/network.h"
#include "obs/obs.h"
#include "sim/simulation.h"

namespace wadc::fault {

struct FaultEvent {
  enum class Kind { kHostDown, kHostUp, kBlackoutBegin, kBlackoutEnd };

  Kind kind = Kind::kHostDown;
  net::HostId host = net::kInvalidHost;  // kHostDown / kHostUp
  net::HostId a = net::kInvalidHost;     // blackout endpoints
  net::HostId b = net::kInvalidHost;
  sim::SimTime time = 0;
};

const char* fault_event_name(FaultEvent::Kind kind);

class FaultInjector {
 public:
  using Listener = std::function<void(const FaultEvent&)>;

  // `seed` feeds the network's drop-probability stream; it does not affect
  // the (already expanded) schedule.
  FaultInjector(sim::Simulation& sim, net::Network& network,
                FaultSchedule schedule, std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Counters are created lazily on the first fault, so attaching obs to an
  // injector with an empty schedule changes nothing.
  void set_obs(const obs::Obs& obs) { obs_ = obs; }

  // Schedules every fault event and enables the drop probability. Call once,
  // before sim.run(). Events landing during teardown are dropped by the
  // kernel.
  void arm();

  // Listeners run after the network mutation, in registration order.
  void add_listener(Listener listener);

  const FaultSchedule& schedule() const { return schedule_; }
  int events_injected() const { return events_injected_; }
  int events_total() const { return static_cast<int>(events_.size()); }

  // True if the schedule restarts `host` strictly after time `t`. Recovery
  // uses this to distinguish a transient crash from a permanent one.
  bool host_restarts_after(net::HostId host, sim::SimTime t) const;

 private:
  void apply(std::size_t index);

  sim::Simulation& sim_;
  net::Network& network_;
  FaultSchedule schedule_;
  std::uint64_t seed_;
  std::vector<FaultEvent> events_;  // sorted by (time, flatten order)
  std::vector<Listener> listeners_;
  int events_injected_ = 0;
  bool armed_ = false;

  obs::Obs obs_;
  obs::Counter* crash_counter_ = nullptr;
  obs::Counter* restart_counter_ = nullptr;
  obs::Counter* blackout_counter_ = nullptr;
  obs::Counter* blackout_end_counter_ = nullptr;
};

}  // namespace wadc::fault
