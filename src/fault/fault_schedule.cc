#include "fault/fault_schedule.h"

#include <cmath>

#include "common/assert.h"
#include "common/rng.h"

namespace wadc::fault {
namespace {

// Fork labels for per-entity sub-streams. Arbitrary constants; fixed so a
// schedule is a pure function of (spec, num_hosts, seed).
constexpr std::uint64_t kCrashStream = 0xc4a5'0000'0000'0000ULL;
constexpr std::uint64_t kBlackoutStream = 0xb1ac'0000'0000'0000ULL;

}  // namespace

int FaultSchedule::event_count() const {
  int n = 0;
  for (const HostCrash& c : crashes) {
    ++n;
    if (c.restart_at != sim::kTimeInfinity) ++n;
  }
  for (const LinkBlackout& b : blackouts) {
    ++n;
    if (b.end != sim::kTimeInfinity) ++n;
  }
  return n;
}

FaultSchedule FaultSchedule::random(const RandomFaultParams& params,
                                    int num_hosts, std::uint64_t seed) {
  WADC_ASSERT(num_hosts >= 2, "need at least two hosts");
  WADC_ASSERT(params.horizon_seconds > 0, "non-positive fault horizon");
  FaultSchedule schedule;
  const Rng base(seed);

  if (params.crash_rate_per_hour > 0) {
    WADC_ASSERT(params.mean_downtime_seconds > 0, "non-positive downtime");
    const double mean_gap = 3600.0 / params.crash_rate_per_hour;
    const net::HostId first = params.protect_client ? 1 : 0;
    for (net::HostId h = first; h < num_hosts; ++h) {
      Rng rng = base.fork(kCrashStream + static_cast<std::uint64_t>(h));
      sim::SimTime t = 0;
      for (;;) {
        t += rng.exponential(mean_gap);
        if (t >= params.horizon_seconds) break;
        const double down = rng.exponential(params.mean_downtime_seconds);
        schedule.crashes.push_back(HostCrash{h, t, t + down});
        t += down;  // a dead host cannot crash again until it restarts
      }
    }
  }

  if (params.blackout_rate_per_hour > 0) {
    WADC_ASSERT(params.mean_blackout_seconds > 0, "non-positive blackout");
    const double mean_gap = 3600.0 / params.blackout_rate_per_hour;
    for (net::HostId a = 0; a < num_hosts; ++a) {
      for (net::HostId b = a + 1; b < num_hosts; ++b) {
        Rng rng = base.fork(kBlackoutStream +
                            net::pair_index(a, b, num_hosts));
        sim::SimTime t = 0;
        for (;;) {
          t += rng.exponential(mean_gap);
          if (t >= params.horizon_seconds) break;
          const double len = rng.exponential(params.mean_blackout_seconds);
          schedule.blackouts.push_back(LinkBlackout{a, b, t, t + len});
          t += len;
        }
      }
    }
  }

  return schedule;
}

std::string FaultSpec::validate(int num_hosts) const {
  const auto bad_host = [num_hosts](net::HostId h) {
    return h < 0 || h >= num_hosts;
  };
  for (const HostCrash& c : crashes) {
    if (bad_host(c.host)) {
      return "crash host " + std::to_string(c.host) +
             " out of range [0, " + std::to_string(num_hosts) + ")";
    }
    if (!(c.at >= 0)) return "crash time must be >= 0";
    if (!(c.restart_at > c.at)) {
      return "restart time must be after the crash time";
    }
  }
  for (const LinkBlackout& b : blackouts) {
    if (bad_host(b.a) || bad_host(b.b) || b.a == b.b) {
      return "blackout link {" + std::to_string(b.a) + ", " +
             std::to_string(b.b) + "} is not a valid host pair";
    }
    if (!(b.begin >= 0)) return "blackout begin must be >= 0";
    if (!(b.end > b.begin)) return "blackout end must be after its begin";
  }
  if (!(drop_probability >= 0 && drop_probability <= 1)) {
    return "drop probability must be in [0, 1], got " +
           std::to_string(drop_probability);
  }
  if (random.crash_rate_per_hour < 0 || random.blackout_rate_per_hour < 0) {
    return "fault rates must be >= 0";
  }
  if (has_random()) {
    if (!(random.horizon_seconds > 0)) {
      return "fault horizon must be > 0 when random rates are set";
    }
    if (random.crash_rate_per_hour > 0 &&
        !(random.mean_downtime_seconds > 0)) {
      return "mean downtime must be > 0";
    }
    if (random.blackout_rate_per_hour > 0 &&
        !(random.mean_blackout_seconds > 0)) {
      return "mean blackout length must be > 0";
    }
  }
  return {};
}

FaultSchedule FaultSpec::build(int num_hosts, std::uint64_t seed) const {
  const std::string problem = validate(num_hosts);
  WADC_ASSERT(problem.empty(), "bad FaultSpec: ", problem);
  FaultSchedule schedule;
  schedule.crashes = crashes;
  schedule.blackouts = blackouts;
  schedule.drop_probability = drop_probability;
  if (has_random()) {
    FaultSchedule drawn = FaultSchedule::random(random, num_hosts, seed);
    schedule.crashes.insert(schedule.crashes.end(), drawn.crashes.begin(),
                            drawn.crashes.end());
    schedule.blackouts.insert(schedule.blackouts.end(),
                              drawn.blackouts.begin(), drawn.blackouts.end());
  }
  return schedule;
}

}  // namespace wadc::fault
