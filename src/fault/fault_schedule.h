// Deterministic fault schedules: what breaks, when, and for how long.
//
// The paper assumes perfectly reliable hosts and links; this module supplies
// the wide-area reality. A FaultSpec describes faults declaratively —
// explicit crash/blackout events, Poisson rates for randomized schedules,
// and a per-transfer drop probability — and build() expands it into a
// concrete FaultSchedule. Everything is a pure function of (spec, num_hosts,
// seed), so fault runs replay exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/types.h"
#include "sim/types.h"

namespace wadc::fault {

// Host `host` dies at `at`; if `restart_at` is finite it comes back then.
struct HostCrash {
  net::HostId host = net::kInvalidHost;
  sim::SimTime at = 0;
  sim::SimTime restart_at = sim::kTimeInfinity;
};

// Link {a, b} is unusable during [begin, end); end may be infinite.
struct LinkBlackout {
  net::HostId a = net::kInvalidHost;
  net::HostId b = net::kInvalidHost;
  sim::SimTime begin = 0;
  sim::SimTime end = sim::kTimeInfinity;
};

// Poisson fault process parameters for randomized schedules.
struct RandomFaultParams {
  // Crash arrivals per host per hour (0 disables). While a host is down it
  // cannot crash again; the clock resumes at restart.
  double crash_rate_per_hour = 0;
  double mean_downtime_seconds = 120;

  // Blackout arrivals per link per hour (0 disables).
  double blackout_rate_per_hour = 0;
  double mean_blackout_seconds = 60;

  // Faults are generated on [0, horizon_seconds).
  double horizon_seconds = 2 * 86400.0;

  // When set, host 0 (the client) never crashes — the run can always be
  // accounted for at the client.
  bool protect_client = true;
};

// A concrete, fully-expanded schedule ready for injection.
struct FaultSchedule {
  std::vector<HostCrash> crashes;
  std::vector<LinkBlackout> blackouts;
  double drop_probability = 0;

  bool empty() const {
    return crashes.empty() && blackouts.empty() && drop_probability == 0;
  }

  // Total number of injectable events (crash + finite restart + blackout
  // begin + finite blackout end). Drop probability is a mode, not an event.
  int event_count() const;

  // Draws a randomized schedule from Poisson processes. Per-host and
  // per-link sub-streams are forked from `seed`, so the schedule for host h
  // does not depend on how many other hosts exist.
  static FaultSchedule random(const RandomFaultParams& params, int num_hosts,
                              std::uint64_t seed);
};

// Declarative fault description: explicit events plus optional random rates.
// This is what rides on ExperimentSpec and what --fault-spec files parse to.
struct FaultSpec {
  std::vector<HostCrash> crashes;
  std::vector<LinkBlackout> blackouts;
  double drop_probability = 0;
  RandomFaultParams random;

  bool has_random() const {
    return random.crash_rate_per_hour > 0 || random.blackout_rate_per_hour > 0;
  }
  bool empty() const {
    return crashes.empty() && blackouts.empty() && drop_probability == 0 &&
           !has_random();
  }

  // Returns an empty string if the spec is well-formed for a run with
  // `num_hosts` hosts, otherwise a description of the first problem.
  std::string validate(int num_hosts) const;

  // Expands explicit events plus (if enabled) a randomized draw into one
  // schedule. Callers should validate() first; build() asserts.
  FaultSchedule build(int num_hosts, std::uint64_t seed) const;
};

}  // namespace wadc::fault
