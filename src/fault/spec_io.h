// Text format for fault specifications (wadc_run --fault-spec=FILE).
//
// Line-oriented; '#' starts a comment, blank lines are ignored. Times are
// simulated seconds, hosts are integer ids (0 is the client by convention).
//
//   drop <probability>                       # per-transfer silent loss
//   crash <host> <at> [<restart_at>]         # omit restart => permanent
//   blackout <a> <b> <begin> <end>           # link {a,b} dark in [begin,end)
//   rate crash <per_hour> <mean_down_s>      # Poisson crash process
//   rate blackout <per_hour> <mean_dark_s>   # Poisson blackout process
//   horizon <seconds>                        # random-fault horizon
//   protect_client <0|1>                     # host 0 immune to crashes
//
// Parse errors throw std::runtime_error with the offending line number.
#pragma once

#include <string>

#include "fault/fault_schedule.h"

namespace wadc::fault {

// Parses the format above from a string.
FaultSpec parse_fault_spec(const std::string& text);

// Reads and parses a file; throws std::runtime_error if unreadable.
FaultSpec load_fault_spec_file(const std::string& path);

}  // namespace wadc::fault
