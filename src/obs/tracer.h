// Structured tracing over simulated time.
//
// The Tracer records typed span ("complete") and instant events stamped with
// simulated time and exports them as Chrome trace-event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing. The wadc
// convention maps hosts to trace processes (`pid`) and per-host activity
// lanes — operators, outgoing links, the control plane — to trace threads
// (`tid`); see docs/OBSERVABILITY.md for the full event taxonomy.
//
// Everything is keyed on deterministic simulation state (simulated time,
// event order), so two runs with the same seed serialize to byte-identical
// files — the trace doubles as a regression oracle.
//
// Instrumented components hold an obs::Obs handle whose tracer pointer is
// null when tracing is off; the null check at the call site is the entire
// disabled-path cost.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace wadc::obs {

// One key/value argument attached to a trace event (the Chrome "args" dict).
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };

  TraceArg(std::string k, std::int64_t v)
      : key(std::move(k)), kind(Kind::kInt), int_value(v) {}
  TraceArg(std::string k, int v)
      : TraceArg(std::move(k), static_cast<std::int64_t>(v)) {}
  TraceArg(std::string k, std::uint64_t v)
      : TraceArg(std::move(k), static_cast<std::int64_t>(v)) {}
  TraceArg(std::string k, double v)
      : key(std::move(k)), kind(Kind::kDouble), double_value(v) {}
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kString), string_value(std::move(v)) {}
  TraceArg(std::string k, const char* v)
      : TraceArg(std::move(k), std::string(v)) {}

  std::string key;
  Kind kind;
  std::int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;
};

// Serializes an arg list as a JSON object ({"key":value,...}); shared by
// the Chrome trace export and the decision-log export.
void write_trace_args(std::ostream& out, const std::vector<TraceArg>& args);

// Lane (tid) conventions used by the wadc instrumentation. Each host is a
// trace process; within it, lane 0 is the control plane, operators occupy
// 1 + op, and outgoing links occupy 1000 + destination host.
inline constexpr int kControlLane = 0;
inline constexpr int operator_lane(int op) { return 1 + op; }
inline constexpr int link_lane(int dst_host) { return 1000 + dst_host; }

class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Span covering [begin, end] in simulated seconds (Chrome 'X' event).
  void complete(const char* cat, const char* name, int pid, int tid,
                sim::SimTime begin, sim::SimTime end,
                std::vector<TraceArg> args = {});

  // Point-in-time event (Chrome 'i' event, thread scope).
  void instant(const char* cat, const char* name, int pid, int tid,
               sim::SimTime t, std::vector<TraceArg> args = {});

  // Display names for Perfetto's process/thread tracks. Idempotent; later
  // names win.
  void name_process(int pid, std::string name);
  void name_thread(int pid, int tid, std::string name);

  std::size_t event_count() const { return events_.size(); }

  // Appends another tracer's events after this one's, in the donor's
  // emission order, and folds its process/thread names (later merges win).
  // The parallel sweep runner records each run into a private tracer and
  // merges them in a fixed (series, configuration) order after joining, so
  // the combined trace is byte-identical regardless of worker count. The
  // donor is left empty.
  void merge_from(Tracer&& other);

  // Serializes every event (metadata first, then records in emission order)
  // as a Chrome trace-event JSON object. Deterministic: identical event
  // sequences produce identical bytes.
  void write_chrome_json(std::ostream& out) const;
  void write_chrome_json_file(const std::string& path) const;

 private:
  struct Event {
    char ph;  // 'X' = complete span, 'i' = instant
    const char* cat;
    const char* name;
    int pid;
    int tid;
    sim::SimTime begin;
    sim::SimTime end;  // == begin for instants
    std::vector<TraceArg> args;
  };

  std::vector<Event> events_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> thread_names_;
};

}  // namespace wadc::obs
