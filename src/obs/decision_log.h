// Structured log of adaptation decisions.
//
// Where the trace answers "what happened when", the decision log answers
// "what did the adaptive machinery decide, and why": every replan trigger,
// every adopted or rejected placement with its cost-model delta, every
// change-over barrier round, every admission admit/defer, every retry and
// fault-recovery relocation. Records are appended in simulation order and
// export as JSON Lines — one self-contained object per decision — so the
// audit trail greps and diffs cleanly.
//
// Determinism contract: like the tracer, everything recorded derives from
// simulated time and protocol state, so same-seed runs serialize to
// byte-identical files, and the sweep runner merges per-run logs in a fixed
// (series, configuration) order via merge_from.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/tracer.h"
#include "sim/types.h"

namespace wadc::obs {

// One decision. `category` groups related decisions ("plan", "barrier",
// "relocation", "admission", "retry", "repair", "fault"); `action` names
// what was decided; `session` tags multi-session runs (-1 = untagged);
// `args` carries the decision-specific evidence (costs, hosts, deltas).
struct DecisionRecord {
  sim::SimTime t;
  const char* category;
  const char* action;
  int session = -1;
  std::vector<TraceArg> args;
};

class DecisionLog {
 public:
  DecisionLog() = default;

  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  void record(sim::SimTime t, const char* category, const char* action,
              int session, std::vector<TraceArg> args = {});

  std::size_t size() const { return records_.size(); }
  const DecisionRecord& at(std::size_t i) const { return records_[i]; }

  // Appends another log's records after this one's, in the donor's emission
  // order; the donor is left empty. Same fixed-order merge contract as
  // Tracer::merge_from.
  void merge_from(DecisionLog&& other);

  // JSON Lines: {"t": seconds, "category": ..., "action": ..., "session":
  // N, "args": {...}} per record, in emission order, precision 17.
  void write_jsonl(std::ostream& out) const;
  void write_jsonl_file(const std::string& path) const;

 private:
  std::vector<DecisionRecord> records_;
};

}  // namespace wadc::obs
