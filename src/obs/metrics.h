// Run-wide metrics: counters, gauges, fixed-bucket histograms.
//
// A MetricsRegistry owns named instruments with stable addresses:
// instrumented components resolve `Counter*` / `Histogram*` once (at
// set_obs time) and update through the pointer on the hot path, so the
// per-event cost is an increment — and a single null check when metrics are
// disabled.
//
// Exports are deterministic: instruments serialize in name order
// (std::map), and all values derive from deterministic simulation state, so
// same-seed runs dump byte-identical files.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace wadc::obs {

class Counter {
 public:
  void add(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// A gauge remembers more than its last sample: it tracks the min/max
// envelope and the update count, so a queue-depth or cache-size gauge says
// something about the whole run, not just its final instant.
class Gauge {
 public:
  void set(double v) {
    if (updates_ == 0) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    value_ = v;
    ++updates_;
  }
  double value() const { return value_; }
  double min() const { return min_; }  // 0 when updates() == 0
  double max() const { return max_; }
  std::uint64_t updates() const { return updates_; }

  // Folds another gauge into this one as if its updates happened after
  // ours: last takes the donor's value, min/max widen, updates add. A
  // donor that was never set leaves this gauge untouched.
  void merge_from(const Gauge& other);

 private:
  double value_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::uint64_t updates_ = 0;
};

// Fixed-bucket histogram with Prometheus-style upper-inclusive bounds: an
// observation v lands in the first bucket with v <= bound, or in the
// implicit overflow bucket past the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  // Folds another histogram with identical bounds into this one:
  // bucket-wise count addition, sum addition, min/max widening.
  void merge_from(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }  // 0 when count() == 0
  double max() const { return max_; }
  std::size_t num_buckets() const { return counts_.size(); }  // incl overflow
  double upper_bound(std::size_t i) const { return bounds_[i]; }  // i < size-1
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }

 private:
  std::vector<double> bounds_;          // strictly ascending
  std::vector<std::uint64_t> counts_;   // bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// `count` bounds starting at `start`, each `factor` times the previous —
// the usual shape for latencies and byte sizes.
std::vector<double> exponential_buckets(double start, double factor,
                                        int count);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name; returned references stay valid for the registry
  // lifetime. A histogram's bucket bounds are fixed by its first caller.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Deterministically folds another registry into this one: counters add,
  // gauges take the donor's last value with min/max widened and update
  // counts added (so merging run registries in run order reproduces serial
  // execution), histograms merge bucket-wise (bounds must match).
  // Instruments missing here are created. The sweep
  // runner uses this to combine per-run registries after joining its
  // workers, in a fixed (series, configuration) order, so the merged dump
  // is byte-identical no matter how many workers ran the sweep.
  void merge_from(const MetricsRegistry& other);

  // {"counters":{...},"gauges":{...},"histograms":{...}} with instruments
  // sorted by name.
  void write_json(std::ostream& out) const;
  void write_json_file(const std::string& path) const;
  // One instrument per line, `name value` / histogram summary — for eyes.
  void write_text(std::ostream& out) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace wadc::obs
