// The observability handle threaded through the system.
//
// An Obs is a pair of non-owning pointers; default-constructed it is the
// null sink, and every instrumented call site guards with a pointer check,
// so a run without observability pays nothing beyond predictable branches.
// The experiment harness (exp::run_experiment) attaches one Obs to the
// network, the monitoring subsystem, and the engine so a run's trace and
// metrics land in one place.
#pragma once

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace wadc::obs {

struct Obs {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool enabled() const { return tracer != nullptr || metrics != nullptr; }
};

}  // namespace wadc::obs
