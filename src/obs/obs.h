// The observability handle threaded through the system.
//
// An Obs is a set of non-owning pointers; default-constructed it is the
// null sink, and every instrumented call site guards with a pointer check,
// so a run without observability pays nothing beyond predictable branches.
// The experiment harness (exp::run_experiment) attaches one Obs to the
// network, the monitoring subsystem, and the engine so a run's trace,
// metrics, and decision log land in one place.
#pragma once

#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/tracer.h"

namespace wadc::obs {

struct Obs {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  DecisionLog* decisions = nullptr;
  // The timeline is written by the experiment harness's sampler (which
  // reads component state), never by the components themselves; it rides
  // in the handle so sweep-level plumbing and per-run merge stay uniform.
  Timeline* timeline = nullptr;

  bool enabled() const {
    return tracer != nullptr || metrics != nullptr || decisions != nullptr ||
           timeline != nullptr;
  }
};

}  // namespace wadc::obs
