#include "obs/tracer.h"

#include <fstream>
#include <iterator>
#include <stdexcept>

#include "common/assert.h"
#include "obs/json_util.h"

namespace wadc::obs {

namespace {

// Simulated seconds -> Chrome trace microseconds.
double to_us(sim::SimTime t) { return t * 1e6; }

}  // namespace

void write_trace_args(std::ostream& out, const std::vector<TraceArg>& args) {
  out << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    const TraceArg& a = args[i];
    if (i > 0) out << ",";
    write_json_string(out, a.key);
    out << ":";
    switch (a.kind) {
      case TraceArg::Kind::kInt:
        out << a.int_value;
        break;
      case TraceArg::Kind::kDouble:
        out << a.double_value;
        break;
      case TraceArg::Kind::kString:
        write_json_string(out, a.string_value);
        break;
    }
  }
  out << "}";
}

void Tracer::complete(const char* cat, const char* name, int pid, int tid,
                      sim::SimTime begin, sim::SimTime end,
                      std::vector<TraceArg> args) {
  WADC_ASSERT(end >= begin, "trace span ends before it begins");
  events_.push_back(Event{'X', cat, name, pid, tid, begin, end,
                          std::move(args)});
}

void Tracer::instant(const char* cat, const char* name, int pid, int tid,
                     sim::SimTime t, std::vector<TraceArg> args) {
  events_.push_back(Event{'i', cat, name, pid, tid, t, t, std::move(args)});
}

void Tracer::name_process(int pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void Tracer::name_thread(int pid, int tid, std::string name) {
  thread_names_[{pid, tid}] = std::move(name);
}

void Tracer::merge_from(Tracer&& other) {
  events_.insert(events_.end(),
                 std::make_move_iterator(other.events_.begin()),
                 std::make_move_iterator(other.events_.end()));
  other.events_.clear();
  for (auto& [pid, name] : other.process_names_) {
    process_names_[pid] = std::move(name);
  }
  other.process_names_.clear();
  for (auto& [key, name] : other.thread_names_) {
    thread_names_[key] = std::move(name);
  }
  other.thread_names_.clear();
}

void Tracer::write_chrome_json(std::ostream& out) const {
  out.precision(17);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Metadata first: stable map order keeps the serialization deterministic.
  for (const auto& [pid, name] : process_names_) {
    sep();
    out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":";
    write_json_string(out, name);
    out << "}}";
  }
  for (const auto& [key, name] : thread_names_) {
    sep();
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << key.first
        << ",\"tid\":" << key.second << ",\"args\":{\"name\":";
    write_json_string(out, name);
    out << "}}";
  }

  for (const Event& ev : events_) {
    sep();
    out << "{\"ph\":\"" << ev.ph << "\",\"cat\":";
    write_json_string(out, ev.cat);
    out << ",\"name\":";
    write_json_string(out, ev.name);
    out << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid
        << ",\"ts\":" << to_us(ev.begin);
    if (ev.ph == 'X') {
      out << ",\"dur\":" << to_us(ev.end - ev.begin);
    } else {
      out << ",\"s\":\"t\"";
    }
    out << ",\"args\":";
    write_trace_args(out, ev.args);
    out << "}";
  }
  out << "\n]}\n";
}

void Tracer::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_chrome_json(out);
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace wadc::obs
