// Wall-clock profiler for the sweep runner itself.
//
// Everything else in src/obs is deterministic simulated-time data; the
// profiler is the deliberate exception. It measures *real* time spent in
// the phases of the experiment pipeline (per-cell setup, engine run, obs
// merge, result collection), broken down per worker thread, plus counters
// for contention events (e.g. progress-lock waits). That is the evidence
// needed to attack the sweep-scaling question — which phase serializes the
// runner — instead of guessing.
//
// Because wall-clock readings differ run to run, profiler output is NEVER
// merged into golden/deterministic artifacts: it exports through its own
// `--profile-out` channel only, and the byte-identity tests exclude it.
//
// Thread safety: add()/count() take an internal mutex; scopes measure with
// std::chrono::steady_clock and report on destruction. The disabled path
// is a null pointer check at the call site (Profiler* == nullptr).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace wadc::obs {

class Profiler {
 public:
  // Worker id for phases that run on the calling (main) thread rather than
  // a pool worker.
  static constexpr int kMainThread = -1;

  Profiler() : created_(std::chrono::steady_clock::now()) {}

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // RAII timer: records elapsed wall time into `phase` for `worker` when it
  // goes out of scope.
  class Scope {
   public:
    Scope(Profiler* profiler, const char* phase, int worker = kMainThread)
        : profiler_(profiler),
          phase_(phase),
          worker_(worker),
          start_(std::chrono::steady_clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (profiler_ == nullptr) return;
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      profiler_->add(phase_, worker_,
                     std::chrono::duration<double>(elapsed).count());
    }

   private:
    Profiler* profiler_;  // null = disabled, destructor is a no-op
    const char* phase_;
    int worker_;
    std::chrono::steady_clock::time_point start_;
  };

  void add(const std::string& phase, int worker, double seconds);
  void count(const std::string& name, std::uint64_t delta = 1);

  // Phase with the largest total wall time ("" when empty) — the dominant
  // (possibly serialized) stage of the runner.
  std::string dominant_phase() const;
  double phase_seconds(const std::string& phase) const;  // 0 when absent
  double wall_seconds() const;  // since construction

  // {"wall_seconds": ..., "dominant_phase": ..., "phases": {name:
  // {"total_seconds", "count", "min_seconds", "max_seconds", "by_worker":
  // {"-1": main-thread seconds, "0": ..., ...}}}, "counters": {...}}
  void write_json(std::ostream& out) const;
  void write_json_file(const std::string& path) const;

 private:
  struct PhaseStat {
    double total = 0;
    std::uint64_t count = 0;
    double min = 0;
    double max = 0;
    std::map<int, double> by_worker;
  };

  mutable std::mutex mu_;
  std::map<std::string, PhaseStat> phases_;
  std::map<std::string, std::uint64_t> counters_;
  std::chrono::steady_clock::time_point created_;
};

}  // namespace wadc::obs
