#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "common/assert.h"
#include "obs/json_util.h"

namespace wadc::obs {

void Gauge::merge_from(const Gauge& other) {
  if (other.updates_ == 0) return;
  if (updates_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  value_ = other.value_;
  updates_ += other.updates_;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  WADC_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be ascending");
  WADC_ASSERT(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
              "histogram bounds must be distinct");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::merge_from(const Histogram& other) {
  WADC_ASSERT(bounds_ == other.bounds_,
              "merging histograms with different bucket bounds");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

std::vector<double> exponential_buckets(double start, double factor,
                                        int count) {
  WADC_ASSERT(start > 0 && factor > 1 && count > 0,
              "bad exponential bucket spec");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).add(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).merge_from(*g);
  }
  for (const auto& [name, h] : other.histograms_) {
    auto& slot = histograms_[name];
    if (!slot) {
      slot = std::make_unique<Histogram>(*h);
    } else {
      slot->merge_from(*h);
    }
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out.precision(17);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": " << c->value();
  }
  out << (counters_.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": {\"last\": " << g->value() << ", \"min\": " << g->min()
        << ", \"max\": " << g->max() << ", \"updates\": " << g->updates()
        << "}";
  }
  out << (gauges_.empty() ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
        << ", \"min\": " << h->min() << ", \"max\": " << h->max()
        << ", \"bounds\": [";
    for (std::size_t i = 0; i + 1 < h->num_buckets(); ++i) {
      if (i > 0) out << ",";
      out << h->upper_bound(i);
    }
    out << "], \"buckets\": [";
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      if (i > 0) out << ",";
      out << h->bucket_count(i);
    }
    out << "]}";
  }
  out << (histograms_.empty() ? "}" : "\n  }") << "\n}\n";
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_json(out);
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

void MetricsRegistry::write_text(std::ostream& out) const {
  out.precision(17);
  for (const auto& [name, c] : counters_) {
    out << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " last=" << g->value() << " min=" << g->min()
        << " max=" << g->max() << " updates=" << g->updates() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << " count=" << h->count() << " sum=" << h->sum()
        << " min=" << h->min() << " max=" << h->max() << "\n";
  }
}

}  // namespace wadc::obs
