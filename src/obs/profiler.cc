#include "obs/profiler.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/json_util.h"

namespace wadc::obs {

void Profiler::add(const std::string& phase, int worker, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  PhaseStat& s = phases_[phase];
  if (s.count == 0) {
    s.min = s.max = seconds;
  } else {
    s.min = std::min(s.min, seconds);
    s.max = std::max(s.max, seconds);
  }
  s.total += seconds;
  ++s.count;
  s.by_worker[worker] += seconds;
}

void Profiler::count(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::string Profiler::dominant_phase() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string best;
  double best_total = -1;
  for (const auto& [name, s] : phases_) {
    if (s.total > best_total) {
      best_total = s.total;
      best = name;
    }
  }
  return best;
}

double Profiler::phase_seconds(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : it->second.total;
}

double Profiler::wall_seconds() const {
  const auto elapsed = std::chrono::steady_clock::now() - created_;
  return std::chrono::duration<double>(elapsed).count();
}

void Profiler::write_json(std::ostream& out) const {
  const double wall = wall_seconds();
  const std::string dominant = dominant_phase();
  std::lock_guard<std::mutex> lock(mu_);
  out.precision(17);
  out << "{\n  \"wall_seconds\": " << wall << ",\n  \"dominant_phase\": ";
  write_json_string(out, dominant);
  out << ",\n  \"phases\": {";
  bool first = true;
  for (const auto& [name, s] : phases_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": {\"total_seconds\": " << s.total << ", \"count\": " << s.count
        << ", \"min_seconds\": " << s.min << ", \"max_seconds\": " << s.max
        << ", \"by_worker\": {";
    bool wfirst = true;
    for (const auto& [worker, seconds] : s.by_worker) {
      if (!wfirst) out << ", ";
      wfirst = false;
      out << "\"" << worker << "\": " << seconds;
    }
    out << "}}";
  }
  out << (phases_.empty() ? "}" : "\n  }") << ",\n  \"counters\": {";
  first = true;
  for (const auto& [name, v] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": " << v;
  }
  out << (counters_.empty() ? "}" : "\n  }") << "\n}\n";
}

void Profiler::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_json(out);
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace wadc::obs
