// Deterministic sim-time time series.
//
// The trace (tracer.h) records events; the timeline records *state*: at a
// fixed sampling interval, driven from the simulation event loop, the
// experiment harness appends rows describing what each host, the network,
// and each session looked like at that instant. That turns
// estimate-vs-truth bandwidth drift, NIC queue build-up, and per-session
// queueing into plottable series instead of end-of-run aggregates.
//
// Three row kinds share one flat schema (unused fields are -1 / empty):
//
//   host     one row per server host per sample: the client's cached
//            bandwidth estimate toward the host (est_bw, with its age) vs
//            the ground-truth trace value (truth_bw), plus the host's
//            in-flight (active) and endpoint-queued (queued) transfer
//            counts — the single-NIC model makes these the per-link
//            utilization / queue depth.
//   net      one row per sample: global in-flight + queued transfer counts
//            and cumulative bytes delivered.
//   session  one row per known session per sample: lifecycle state
//            (queued/running/done), admission queue length at the sample
//            instant, images completed, and bytes moved by the session.
//
// The sampler only reads simulation state, so attaching a timeline never
// changes a run's results; rows derive purely from simulated time, so
// same-seed runs export byte-identical files, and the sweep runner merges
// per-run timelines in a fixed order via merge_from — identical across
// worker counts.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"

namespace wadc::obs {

class Timeline {
 public:
  struct Row {
    sim::SimTime t = 0;
    const char* kind = "";  // "host" | "net" | "session"
    int id = -1;            // host id / session id; -1 for net rows
    double est_bw = -1;     // host: cached estimate, bytes/s (-1 = none)
    double est_age = -1;    // host: estimate age in seconds (-1 = none)
    double truth_bw = -1;   // host: ground-truth trace bandwidth, bytes/s
    int active = -1;        // in-flight transfers (host / global)
    int queued = -1;        // host/net: endpoint-queued transfers;
                            // session: admission queue length
    const char* state = ""; // session: queued | running | done
    std::int64_t images = -1;  // session: images completed so far
    double bytes = -1;      // net: cumulative bytes; session: bytes moved
  };

  Timeline() = default;

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  void add(Row row) { rows_.push_back(row); }

  std::size_t size() const { return rows_.size(); }
  const Row& row(std::size_t i) const { return rows_[i]; }

  // Appends another timeline's rows after this one's, in the donor's order;
  // the donor is left empty. Same fixed-order merge contract as
  // Tracer::merge_from.
  void merge_from(Timeline&& other);

  // CSV: a header line, then one row per line with empty cells for unset
  // (-1 / "") fields. Deterministic, precision 17.
  void write_csv(std::ostream& out) const;
  // JSON: {"rows": [{...}, ...]} with unset fields omitted.
  void write_json(std::ostream& out) const;
  // Writes CSV or JSON by extension (".json" -> JSON, anything else ->
  // CSV); throws on open or post-write stream failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<Row> rows_;
};

}  // namespace wadc::obs
