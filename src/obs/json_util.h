// Minimal JSON string escaping shared by the trace and metrics exporters.
//
// The observability files are consumed by external tools (Perfetto, jq), so
// strings must be escaped exactly per RFC 8259: quote, backslash, and all
// control characters below 0x20.
#pragma once

#include <cstdio>
#include <ostream>
#include <string_view>

namespace wadc::obs {

inline void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\b':
        out << "\\b";
        break;
      case '\f':
        out << "\\f";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace wadc::obs
