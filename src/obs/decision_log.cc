#include "obs/decision_log.h"

#include <fstream>
#include <iterator>
#include <stdexcept>

#include "obs/json_util.h"

namespace wadc::obs {

void DecisionLog::record(sim::SimTime t, const char* category,
                         const char* action, int session,
                         std::vector<TraceArg> args) {
  records_.push_back(
      DecisionRecord{t, category, action, session, std::move(args)});
}

void DecisionLog::merge_from(DecisionLog&& other) {
  records_.insert(records_.end(),
                  std::make_move_iterator(other.records_.begin()),
                  std::make_move_iterator(other.records_.end()));
  other.records_.clear();
}

void DecisionLog::write_jsonl(std::ostream& out) const {
  out.precision(17);
  for (const DecisionRecord& r : records_) {
    out << "{\"t\":" << r.t << ",\"category\":";
    write_json_string(out, r.category);
    out << ",\"action\":";
    write_json_string(out, r.action);
    out << ",\"session\":" << r.session << ",\"args\":";
    write_trace_args(out, r.args);
    out << "}\n";
  }
}

void DecisionLog::write_jsonl_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_jsonl(out);
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace wadc::obs
