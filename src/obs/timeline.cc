#include "obs/timeline.h"

#include <fstream>
#include <iterator>
#include <stdexcept>

#include "obs/json_util.h"

namespace wadc::obs {

void Timeline::merge_from(Timeline&& other) {
  rows_.insert(rows_.end(), std::make_move_iterator(other.rows_.begin()),
               std::make_move_iterator(other.rows_.end()));
  other.rows_.clear();
}

void Timeline::write_csv(std::ostream& out) const {
  out.precision(17);
  out << "t,kind,id,est_bw,est_age_s,truth_bw,active,queued,state,images,"
         "bytes\n";
  for (const Row& r : rows_) {
    out << r.t << "," << r.kind << ",";
    if (r.id >= 0) out << r.id;
    out << ",";
    if (r.est_bw >= 0) out << r.est_bw;
    out << ",";
    if (r.est_age >= 0) out << r.est_age;
    out << ",";
    if (r.truth_bw >= 0) out << r.truth_bw;
    out << ",";
    if (r.active >= 0) out << r.active;
    out << ",";
    if (r.queued >= 0) out << r.queued;
    out << "," << r.state << ",";
    if (r.images >= 0) out << r.images;
    out << ",";
    if (r.bytes >= 0) out << r.bytes;
    out << "\n";
  }
}

void Timeline::write_json(std::ostream& out) const {
  out.precision(17);
  out << "{\"rows\": [";
  bool first = true;
  for (const Row& r : rows_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "{\"t\":" << r.t << ",\"kind\":";
    write_json_string(out, r.kind);
    if (r.id >= 0) out << ",\"id\":" << r.id;
    if (r.est_bw >= 0) out << ",\"est_bw\":" << r.est_bw;
    if (r.est_age >= 0) out << ",\"est_age_s\":" << r.est_age;
    if (r.truth_bw >= 0) out << ",\"truth_bw\":" << r.truth_bw;
    if (r.active >= 0) out << ",\"active\":" << r.active;
    if (r.queued >= 0) out << ",\"queued\":" << r.queued;
    if (r.state[0] != '\0') {
      out << ",\"state\":";
      write_json_string(out, r.state);
    }
    if (r.images >= 0) out << ",\"images\":" << r.images;
    if (r.bytes >= 0) out << ",\"bytes\":" << r.bytes;
    out << "}";
  }
  out << (rows_.empty() ? "]}\n" : "\n]}\n");
}

void Timeline::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    write_json(out);
  } else {
    write_csv(out);
  }
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace wadc::obs
