// The satellite-image composition workload (§4).
//
// Each of the S servers delivers a sequence of 180 images; corresponding
// images are composed pairwise (pixel-by-pixel selection) and a sequence of
// 180 composed images is delivered to the client. Image sizes follow the
// paper's study of 1000+ hurricane images from 15 web sites: normal with
// mean 128KB and 25% sigma. Composition costs 7 microseconds per pixel and
// the output has the size of the larger input (the smaller image is
// expanded). Disk reads run at 3 MB/s.
//
// Pixel data itself never influences timing, so images carry only their
// size and a lineage digest; the digest lets tests verify that the engine
// composed exactly the right partitions in the right structure no matter
// where operators ran.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace wadc::workload {

struct ImageSpec {
  double bytes = 0;
  std::uint64_t lineage = 0;  // digest of the partition's composition tree

  bool operator==(const ImageSpec&) const = default;
};

struct WorkloadParams {
  int iterations = 180;            // images per server (§4)
  double mean_bytes = 128.0 * 1024;
  double sigma_fraction = 0.25;    // sigma = 25% of the mean
  double min_bytes = 8.0 * 1024;   // truncation floor for the sampler
  double disk_bytes_per_second = 3.0e6;
  double compute_seconds_per_byte = 7e-6;  // 7 us/pixel, 1 byte/pixel
};

// Digest used to build lineage values; order-sensitive, so tests can detect
// swapped operands as well as wrong partitions.
std::uint64_t lineage_leaf(int server, int iteration);
std::uint64_t lineage_combine(std::uint64_t left, std::uint64_t right);

// Composes two images: output size is the larger input (§4), lineage is the
// ordered combination of the input lineages.
ImageSpec compose(const ImageSpec& left, const ImageSpec& right);

class ImageWorkload {
 public:
  // Generates the full image schedule for `num_servers` servers,
  // deterministically from the seed.
  ImageWorkload(const WorkloadParams& params, int num_servers,
                std::uint64_t seed);

  const WorkloadParams& params() const { return params_; }
  int num_servers() const { return num_servers_; }
  int iterations() const { return params_.iterations; }

  const ImageSpec& image(int server, int iteration) const;

  double disk_seconds(const ImageSpec& img) const {
    return img.bytes / params_.disk_bytes_per_second;
  }
  double compose_seconds(const ImageSpec& out) const {
    return out.bytes * params_.compute_seconds_per_byte;
  }

  // Mean image size actually drawn for this workload (useful for cost
  // models and tests).
  double observed_mean_bytes() const;

 private:
  WorkloadParams params_;
  int num_servers_;
  std::vector<ImageSpec> images_;  // [server * iterations + iteration]
};

}  // namespace wadc::workload
