#include "workload/image_workload.h"

#include <algorithm>

#include "common/assert.h"

namespace wadc::workload {

std::uint64_t lineage_leaf(int server, int iteration) {
  // SplitMix-style mix of the (server, iteration) coordinates.
  std::uint64_t x = (static_cast<std::uint64_t>(server) << 32) |
                    static_cast<std::uint32_t>(iteration);
  x ^= 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t lineage_combine(std::uint64_t left, std::uint64_t right) {
  // Non-commutative mix so operand order matters.
  std::uint64_t x = left * 0xff51afd7ed558ccdULL + 0x2545f4914f6cdd1dULL;
  x ^= right + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
  x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  return x ^ (x >> 33);
}

ImageSpec compose(const ImageSpec& left, const ImageSpec& right) {
  ImageSpec out;
  out.bytes = std::max(left.bytes, right.bytes);
  out.lineage = lineage_combine(left.lineage, right.lineage);
  return out;
}

ImageWorkload::ImageWorkload(const WorkloadParams& params, int num_servers,
                             std::uint64_t seed)
    : params_(params), num_servers_(num_servers) {
  WADC_ASSERT(num_servers >= 1, "need at least one server");
  WADC_ASSERT(params_.iterations >= 1, "need at least one iteration");
  WADC_ASSERT(params_.mean_bytes > params_.min_bytes,
              "mean below truncation floor");
  images_.reserve(static_cast<std::size_t>(num_servers) *
                  static_cast<std::size_t>(params_.iterations));
  const double sigma = params_.mean_bytes * params_.sigma_fraction;
  for (int s = 0; s < num_servers; ++s) {
    Rng rng = Rng(seed).fork(0x1111aaaa + static_cast<std::uint64_t>(s));
    for (int i = 0; i < params_.iterations; ++i) {
      ImageSpec img;
      img.bytes =
          std::max(rng.normal(params_.mean_bytes, sigma), params_.min_bytes);
      img.lineage = lineage_leaf(s, i);
      images_.push_back(img);
    }
  }
}

const ImageSpec& ImageWorkload::image(int server, int iteration) const {
  WADC_ASSERT(server >= 0 && server < num_servers_, "bad server index");
  WADC_ASSERT(iteration >= 0 && iteration < params_.iterations,
              "bad iteration index");
  return images_[static_cast<std::size_t>(server) *
                     static_cast<std::size_t>(params_.iterations) +
                 static_cast<std::size_t>(iteration)];
}

double ImageWorkload::observed_mean_bytes() const {
  double sum = 0;
  for (const ImageSpec& img : images_) sum += img.bytes;
  return sum / static_cast<double>(images_.size());
}

}  // namespace wadc::workload
