// wadc_report — one-command reproduction report.
//
// Runs scaled-down versions of every experiment in the paper's evaluation
// (plus this repository's extensions) and writes a self-contained Markdown
// report with ASCII charts: the Figure 6 sorted speedup curves, the scaling
// and period sweeps, the tree-shape comparison, and the ablations.
//
//   wadc_report [--configs=N] [--out=FILE]
//
// Defaults: 60 configurations (the full paper scale of 300 takes a few
// minutes; pass --configs=300), report to stdout.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/report.h"
#include "trace/library.h"
#include "trace/stats.h"

namespace {

using namespace wadc;

// ---- tiny ASCII chart helpers ------------------------------------------------

// Plots sorted series as curves on a character grid (x = configuration
// rank, y = value). Series are drawn in order with the given glyphs; later
// glyphs win collisions.
std::string ascii_curves(const std::vector<std::vector<double>>& series,
                         const std::vector<char>& glyphs, int width = 64,
                         int height = 14) {
  double lo = 1e300, hi = -1e300;
  for (const auto& s : series) {
    for (const double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi <= lo) hi = lo + 1;
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  for (std::size_t k = 0; k < series.size(); ++k) {
    std::vector<double> sorted = series[k];
    std::sort(sorted.begin(), sorted.end());
    for (int x = 0; x < width; ++x) {
      const std::size_t idx =
          sorted.size() <= 1
              ? 0
              : static_cast<std::size_t>(
                    static_cast<double>(x) / (width - 1) *
                    static_cast<double>(sorted.size() - 1));
      const double v = sorted[idx];
      int y = static_cast<int>((v - lo) / (hi - lo) *
                               static_cast<double>(height - 1));
      y = std::min(std::max(y, 0), height - 1);
      grid[static_cast<std::size_t>(height - 1 - y)]
          [static_cast<std::size_t>(x)] = glyphs[k];
    }
  }
  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%6.2f ", hi);
  out << buf << "┐\n";
  for (const auto& row : grid) out << "       │" << row << "\n";
  std::snprintf(buf, sizeof(buf), "%6.2f ", lo);
  out << buf << "┴" << std::string(static_cast<std::size_t>(64), '-')
      << "> configs (sorted)\n";
  return out.str();
}

std::string bar(double value, double max_value, int width = 40) {
  const int n = max_value > 0
                    ? static_cast<int>(value / max_value * width + 0.5)
                    : 0;
  return std::string(static_cast<std::size_t>(std::min(n, width)), '#');
}

struct Options {
  int configs = 60;
  std::string out_path;
};

std::optional<std::string> flag_value(const char* arg, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::string(arg + len + 1);
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (auto v = flag_value(argv[i], "--configs")) {
      opt.configs = std::atoi(v->c_str());
    } else if (auto v2 = flag_value(argv[i], "--out")) {
      opt.out_path = *v2;
    } else {
      std::fprintf(stderr, "usage: wadc_report [--configs=N] [--out=FILE]\n");
      return 2;
    }
  }

  std::ofstream file;
  if (!opt.out_path.empty()) {
    file.open(opt.out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", opt.out_path.c_str());
      return 1;
    }
  }
  std::ostream& out = opt.out_path.empty() ? std::cout : file;

  const trace::TraceLibrary library(trace::TraceLibraryParams{}, 2026);
  exp::SweepSpec sweep;
  sweep.configs = opt.configs;
  sweep.base_seed = exp::env_seed(1000);

  const auto progress = [](int done, int total) {
    if (done % 100 == 0) {
      std::fprintf(stderr, "  ... %d/%d runs\r", done, total);
    }
  };

  out << "# wadc reproduction report\n\n";
  out << "Ranganathan, Acharya, Saltz — *Adapting to Bandwidth Variations "
         "in Wide-Area Data Combination* (ICDCS 1998)\n\n";
  out << opt.configs << " network configurations per experiment, seed "
      << sweep.base_seed << ".\n\n";

  // ---- Figure 6 ---------------------------------------------------------
  std::fprintf(stderr, "[1/5] figure 6 ...\n");
  using core::AlgorithmKind;
  const auto fig6 = exp::run_sweep(
      library, sweep,
      {AlgorithmKind::kOneShot, AlgorithmKind::kGlobal, AlgorithmKind::kLocal},
      progress);
  out << "## Relocation speedup over download-all (Figure 6)\n\n";
  out << "```\n"
      << ascii_curves({fig6[0].speedup, fig6[2].speedup, fig6[1].speedup},
                      {'o', 'l', 'G'})
      << "   o = one-shot   l = local   G = global\n```\n\n";
  const auto s6_one = exp::stats_of(fig6[0].speedup);
  const auto s6_glo = exp::stats_of(fig6[1].speedup);
  const auto s6_loc = exp::stats_of(fig6[2].speedup);
  out << "| algorithm | mean | median | p10 | p90 |\n";
  out << "|---|---|---|---|---|\n";
  char line[256];
  const auto row = [&](const char* name, const exp::SeriesStats& s) {
    std::snprintf(line, sizeof(line),
                  "| %s | %.2fx | %.2fx | %.2fx | %.2fx |\n", name, s.mean,
                  s.median, s.p10, s.p90);
    out << line;
  };
  row("one-shot", s6_one);
  row("global", s6_glo);
  row("local", s6_loc);
  std::vector<double> ratio_g_os, ratio_g_l;
  for (std::size_t i = 0; i < fig6[1].speedup.size(); ++i) {
    ratio_g_os.push_back(fig6[1].speedup[i] / fig6[0].speedup[i]);
    ratio_g_l.push_back(fig6[1].speedup[i] / fig6[2].speedup[i]);
  }
  std::snprintf(line, sizeof(line),
                "\nmedian global/one-shot ratio **%.2f** (paper ~1.40), "
                "global/local **%.2f** (paper ~1.25)\n\n",
                trace::median_of(ratio_g_os), trace::median_of(ratio_g_l));
  out << line;

  // ---- Figure 8 ----------------------------------------------------------
  std::fprintf(stderr, "[2/5] figure 8 ...\n");
  out << "## Scaling with the number of servers (Figure 8)\n\n";
  out << "| servers | one-shot | global | local |\n|---|---|---|---|\n";
  for (const int servers : {4, 8, 16}) {
    exp::SweepSpec s = sweep;
    s.experiment.num_servers = servers;
    const auto r = exp::run_sweep(library, s,
                                  {AlgorithmKind::kOneShot,
                                   AlgorithmKind::kGlobal,
                                   AlgorithmKind::kLocal},
                                  progress);
    std::snprintf(line, sizeof(line), "| %d | %.2fx | %.2fx | %.2fx |\n",
                  servers, exp::stats_of(r[0].speedup).mean,
                  exp::stats_of(r[1].speedup).mean,
                  exp::stats_of(r[2].speedup).mean);
    out << line;
  }
  out << "\n";

  // ---- Figure 9 ----------------------------------------------------------
  std::fprintf(stderr, "[3/5] figure 9 ...\n");
  out << "## Relocation period (Figure 9)\n\n```\n";
  std::vector<std::pair<double, double>> period_points;
  for (const double minutes : {2.0, 5.0, 10.0, 30.0, 60.0}) {
    exp::SweepSpec s = sweep;
    s.experiment.relocation_period_seconds = minutes * 60;
    const auto r =
        exp::run_sweep(library, s, {AlgorithmKind::kGlobal}, progress);
    period_points.push_back({minutes, exp::stats_of(r[0].speedup).mean});
  }
  double max_speedup = 0;
  for (const auto& [m, v] : period_points) max_speedup = std::max(max_speedup, v);
  for (const auto& [m, v] : period_points) {
    std::snprintf(line, sizeof(line), "%5.0f min  %-40s %.2fx\n", m,
                  bar(v, max_speedup).c_str(), v);
    out << line;
  }
  out << "```\n\n";

  // ---- Figure 10 ---------------------------------------------------------
  std::fprintf(stderr, "[4/5] figure 10 ...\n");
  out << "## Combination order (Figure 10)\n\n";
  out << "| series | binary | left-deep |\n|---|---|---|\n";
  {
    exp::SweepSpec s = sweep;
    const auto binary = exp::run_sweep(
        library, s, {AlgorithmKind::kGlobal, AlgorithmKind::kLocal},
        progress);
    s.experiment.tree_shape = core::TreeShape::kLeftDeep;
    const auto ldeep = exp::run_sweep(
        library, s, {AlgorithmKind::kGlobal, AlgorithmKind::kLocal},
        progress);
    std::snprintf(line, sizeof(line), "| global | %.2fx | %.2fx |\n",
                  exp::stats_of(binary[0].speedup).mean,
                  exp::stats_of(ldeep[0].speedup).mean);
    out << line;
    std::snprintf(line, sizeof(line), "| local | %.2fx | %.2fx |\n",
                  exp::stats_of(binary[1].speedup).mean,
                  exp::stats_of(ldeep[1].speedup).mean);
    out << line;
  }
  out << "\n";

  // ---- extensions ---------------------------------------------------------
  std::fprintf(stderr, "[5/5] extensions ...\n");
  out << "## Extensions\n\n";
  {
    exp::SweepSpec s = sweep;
    const auto r = exp::run_sweep(
        library, s,
        {AlgorithmKind::kGlobalOrder, AlgorithmKind::kReorderOnly},
        progress);
    std::snprintf(line, sizeof(line),
                  "- adaptive order+location (`global-order`): mean "
                  "**%.2fx**\n",
                  exp::stats_of(r[0].speedup).mean);
    out << line;
    std::snprintf(line, sizeof(line),
                  "- reorder-only (query-scrambling analog): mean "
                  "**%.2fx** — §1's \"inherently limited\" claim, "
                  "quantified\n",
                  exp::stats_of(r[1].speedup).mean);
    out << line;
  }
  out << "\nSee EXPERIMENTS.md for the full-scale numbers and the "
         "paper-vs-measured discussion.\n";

  std::fprintf(stderr, "done.\n");
  if (!opt.out_path.empty()) {
    std::fprintf(stderr, "report written to %s\n", opt.out_path.c_str());
  }
  return 0;
}
