// wadc_report — one-command reproduction report, plus a run inspector.
//
// Report mode runs scaled-down versions of every experiment in the paper's
// evaluation (plus this repository's extensions) and writes a
// self-contained Markdown report with ASCII charts: the Figure 6 sorted
// speedup curves, the scaling and period sweeps, the tree-shape comparison,
// and the ablations.
//
//   wadc_report [--configs=N] [--out=FILE]
//
// Defaults: 60 configurations (the full paper scale of 300 takes a few
// minutes; pass --configs=300), report to stdout.
//
// Inspect mode reads the artifacts a wadc_run invocation exported
// (--dump-run / --timeline-out / --metrics-out / --decisions-out) and
// prints a human-readable digest: the run summary (labeling tcp-backend
// runs, whose timestamps are scaled wall clock rather than simulated
// seconds), per-host estimate-vs-truth staleness statistics, per-session
// summaries, and the adaptation-decision audit trail.
//
//   wadc_report inspect [--run=FILE] [--timeline=FILE] [--metrics=FILE]
//                       [--decisions=FILE] [--max-trail=N]
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.h"
#include "exp/report.h"
#include "trace/library.h"
#include "trace/stats.h"

namespace {

using namespace wadc;

// ---- tiny ASCII chart helpers ------------------------------------------------

// Plots sorted series as curves on a character grid (x = configuration
// rank, y = value). Series are drawn in order with the given glyphs; later
// glyphs win collisions.
std::string ascii_curves(const std::vector<std::vector<double>>& series,
                         const std::vector<char>& glyphs, int width = 64,
                         int height = 14) {
  double lo = 1e300, hi = -1e300;
  for (const auto& s : series) {
    for (const double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi <= lo) hi = lo + 1;
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  for (std::size_t k = 0; k < series.size(); ++k) {
    std::vector<double> sorted = series[k];
    std::sort(sorted.begin(), sorted.end());
    for (int x = 0; x < width; ++x) {
      const std::size_t idx =
          sorted.size() <= 1
              ? 0
              : static_cast<std::size_t>(
                    static_cast<double>(x) / (width - 1) *
                    static_cast<double>(sorted.size() - 1));
      const double v = sorted[idx];
      int y = static_cast<int>((v - lo) / (hi - lo) *
                               static_cast<double>(height - 1));
      y = std::min(std::max(y, 0), height - 1);
      grid[static_cast<std::size_t>(height - 1 - y)]
          [static_cast<std::size_t>(x)] = glyphs[k];
    }
  }
  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%6.2f ", hi);
  out << buf << "┐\n";
  for (const auto& row : grid) out << "       │" << row << "\n";
  std::snprintf(buf, sizeof(buf), "%6.2f ", lo);
  out << buf << "┴" << std::string(static_cast<std::size_t>(64), '-')
      << "> configs (sorted)\n";
  return out.str();
}

std::string bar(double value, double max_value, int width = 40) {
  const int n = max_value > 0
                    ? static_cast<int>(value / max_value * width + 0.5)
                    : 0;
  return std::string(static_cast<std::size_t>(std::min(n, width)), '#');
}

struct Options {
  int configs = 60;
  std::string out_path;
};

std::optional<std::string> flag_value(const char* arg, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::string(arg + len + 1);
  }
  return std::nullopt;
}

// ---- minimal JSON reader (inspect mode; no external dependencies) ----------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double number_or(const std::string& key, double fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  std::string string_or(const std::string& key,
                        const std::string& fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->kind == Kind::kString ? v->string : fallback;
  }
};

// Strict enough for the files this repo writes; throws std::runtime_error
// with a byte offset on anything malformed.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return {};
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          // The repo's writers only emit \u00XX control escapes; decode the
          // code point as a single byte and keep anything else verbatim.
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          out.push_back(static_cast<char>(std::stoi(hex, nullptr, 16)));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) throw std::runtime_error("read failed: " + path);
  return buf.str();
}

// ---- inspect mode ----------------------------------------------------------

// One parsed timeline row (obs::Timeline's flat schema, with strings owned).
struct TimelineRow {
  double t = 0;
  std::string kind;
  int id = -1;
  double est_bw = -1;
  double est_age = -1;
  double truth_bw = -1;
  int active = -1;
  int queued = -1;
  std::string state;
  long long images = -1;
  double bytes = -1;
};

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (const char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else {
      cell.push_back(c);
    }
  }
  cells.push_back(cell);
  return cells;
}

// Loads a timeline exported by wadc_run --timeline-out, in either format
// (CSV by default, JSON when the export path ended in .json).
std::vector<TimelineRow> load_timeline(const std::string& path) {
  const std::string text = read_file(path);
  std::vector<TimelineRow> rows;

  std::size_t first = 0;
  while (first < text.size() &&
         std::isspace(static_cast<unsigned char>(text[first]))) {
    ++first;
  }
  if (first < text.size() && text[first] == '{') {
    const JsonValue root = JsonParser(text).parse();
    const JsonValue* array = root.find("rows");
    if (array == nullptr || array->kind != JsonValue::Kind::kArray) {
      throw std::runtime_error(path + ": no \"rows\" array");
    }
    for (const JsonValue& r : array->array) {
      TimelineRow row;
      row.t = r.number_or("t", 0);
      row.kind = r.string_or("kind", "");
      row.id = static_cast<int>(r.number_or("id", -1));
      row.est_bw = r.number_or("est_bw", -1);
      row.est_age = r.number_or("est_age_s", -1);
      row.truth_bw = r.number_or("truth_bw", -1);
      row.active = static_cast<int>(r.number_or("active", -1));
      row.queued = static_cast<int>(r.number_or("queued", -1));
      row.state = r.string_or("state", "");
      row.images = static_cast<long long>(r.number_or("images", -1));
      row.bytes = r.number_or("bytes", -1);
      rows.push_back(std::move(row));
    }
    return rows;
  }

  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error(path + ": empty");
  const std::string expected =
      "t,kind,id,est_bw,est_age_s,truth_bw,active,queued,state,images,bytes";
  if (line != expected) {
    throw std::runtime_error(path + ": unexpected CSV header '" + line + "'");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split_csv_line(line);
    if (cells.size() != 11) {
      throw std::runtime_error(path + ": malformed CSV row '" + line + "'");
    }
    const auto num = [](const std::string& s, double fallback) {
      return s.empty() ? fallback : std::stod(s);
    };
    TimelineRow row;
    row.t = num(cells[0], 0);
    row.kind = cells[1];
    row.id = static_cast<int>(num(cells[2], -1));
    row.est_bw = num(cells[3], -1);
    row.est_age = num(cells[4], -1);
    row.truth_bw = num(cells[5], -1);
    row.active = static_cast<int>(num(cells[6], -1));
    row.queued = static_cast<int>(num(cells[7], -1));
    row.state = cells[8];
    row.images = static_cast<long long>(num(cells[9], -1));
    row.bytes = num(cells[10], -1);
    rows.push_back(std::move(row));
  }
  return rows;
}

struct InspectOptions {
  std::string run_path;  // run.json from wadc_run --dump-run
  std::string timeline_path;
  std::string metrics_path;
  std::string decisions_path;
  int max_trail = 200;  // decision records printed in full
};

// Digest of a --dump-run artifact. Runs executed on a non-default transport
// backend carry a "backend" field; their timestamps are scaled wall clock,
// not deterministic simulated seconds, and the digest says so instead of
// presenting them as reproducible.
void print_run_digest(const std::string& path) {
  const JsonValue root = JsonParser(read_file(path)).parse();
  const std::string backend = root.string_or("backend", "sim");
  std::printf("## Run digest\n\n");
  if (backend == "sim") {
    std::printf("backend: sim (deterministic; timestamps are simulated "
                "seconds)\n");
  } else {
    std::printf("backend: %s (wall-clock run; timestamps are scaled wall "
                "clock and vary run to run — do not diff against sim "
                "artifacts)\n",
                backend.c_str());
  }
  const JsonValue* completed = root.find("completed");
  std::printf("completed: %s\n",
              completed != nullptr && completed->boolean ? "yes" : "NO");
  std::printf("completion: %.1f %s\n",
              root.number_or("completion_seconds", 0),
              backend == "sim" ? "simulated seconds"
                               : "scaled-wall-clock seconds");
  std::printf("mean interarrival: %.2f s\n",
              root.number_or("mean_interarrival_seconds", 0));
  std::printf("replans: %lld\n",
              static_cast<long long>(root.number_or("replans", 0)));
  if (const JsonValue* relocations = root.find("relocations");
      relocations != nullptr &&
      relocations->kind == JsonValue::Kind::kArray) {
    std::printf("relocations: %zu\n", relocations->array.size());
  }
  if (const JsonValue* fs = root.find("failure_summary"); fs != nullptr) {
    std::printf("faults: %lld injected, %lld retries, %d repairs\n",
                static_cast<long long>(fs->number_or("faults_injected", 0)),
                static_cast<long long>(fs->number_or("transfer_retries", 0)),
                static_cast<int>(fs->number_or("repair_relocations", 0)));
  }
  std::printf("\n");
}

void print_host_staleness(const std::vector<TimelineRow>& rows) {
  struct HostAgg {
    int samples = 0;       // host rows seen
    int with_estimate = 0; // rows where the client held any estimate
    double age_sum = 0, age_max = 0;
    double err_sum = 0;    // relative |est - truth| / truth, truth > 0
    int err_count = 0;
    double truth_sum = 0;
    int truth_count = 0;
  };
  std::map<int, HostAgg> hosts;
  for (const TimelineRow& r : rows) {
    if (r.kind != "host") continue;
    HostAgg& h = hosts[r.id];
    ++h.samples;
    if (r.truth_bw >= 0) {
      h.truth_sum += r.truth_bw;
      ++h.truth_count;
    }
    if (r.est_bw >= 0) {
      ++h.with_estimate;
      h.age_sum += r.est_age;
      h.age_max = std::max(h.age_max, r.est_age);
      if (r.truth_bw > 0) {
        h.err_sum += std::fabs(r.est_bw - r.truth_bw) / r.truth_bw;
        ++h.err_count;
      }
    }
  }
  std::printf("## Host bandwidth estimates (client's cache vs ground "
              "truth)\n\n");
  if (hosts.empty()) {
    std::printf("no host rows in the timeline\n\n");
    return;
  }
  std::printf("host  samples  coverage  mean_age_s  max_age_s  mean_|err|  "
              "mean_truth_bw\n");
  for (const auto& [id, h] : hosts) {
    const double coverage =
        h.samples > 0 ? 100.0 * h.with_estimate / h.samples : 0;
    const double mean_age =
        h.with_estimate > 0 ? h.age_sum / h.with_estimate : 0;
    const double mean_err = h.err_count > 0 ? h.err_sum / h.err_count : 0;
    const double mean_truth =
        h.truth_count > 0 ? h.truth_sum / h.truth_count : 0;
    if (h.truth_count == 0 && h.with_estimate == 0) {
      // The client host: no client->client link, only NIC activity.
      std::printf("%-4d  %7d  (client host: NIC activity only)\n", id,
                  h.samples);
      continue;
    }
    std::printf("%-4d  %7d  %7.1f%%  %10.1f  %9.1f  %9.1f%%  %13.0f\n", id,
                h.samples, coverage, mean_age, h.age_max, 100.0 * mean_err,
                mean_truth);
  }
  std::printf("\n");
}

void print_session_summaries(const std::vector<TimelineRow>& rows) {
  struct SessionAgg {
    std::string last_state;
    long long last_images = 0;
    double last_bytes = 0;
    double first_seen = 0, last_seen = 0;
    int samples_queued = 0;
    int samples = 0;
  };
  std::map<int, SessionAgg> sessions;
  for (const TimelineRow& r : rows) {
    if (r.kind != "session") continue;
    SessionAgg& s = sessions[r.id];
    if (s.samples == 0) s.first_seen = r.t;
    ++s.samples;
    s.last_seen = r.t;
    s.last_state = r.state;
    s.last_images = r.images;
    s.last_bytes = r.bytes;
    if (r.state == "queued") ++s.samples_queued;
  }
  if (sessions.empty()) return;
  std::printf("## Sessions (timeline)\n\n");
  std::printf("session  final_state  images  bytes_moved    queued_samples  "
              "observed_s\n");
  for (const auto& [id, s] : sessions) {
    std::printf("%-7d  %-11s  %6lld  %12.0f  %14d  %10.0f\n", id,
                s.last_state.c_str(), s.last_images, s.last_bytes,
                s.samples_queued, s.last_seen - s.first_seen);
  }
  std::printf("\n");
}

// Result-cache digest: per-host hit ratios, occupancy, and the fabric
// totals (diffusions, invalidations, bytes saved). Printed only when the
// artifact carries cache.* instruments, so cache-off runs inspect exactly
// as before.
void print_cache_digest(const JsonValue& root) {
  const JsonValue* counters = root.find("counters");
  if (counters == nullptr) return;
  bool any = false;
  for (const auto& [name, v] : counters->object) {
    (void)v;
    if (name.rfind("cache.", 0) == 0) {
      any = true;
      break;
    }
  }
  if (!any) return;

  const auto counter = [&](const std::string& name) {
    const JsonValue* v = counters->find(name);
    return v == nullptr ? 0.0 : v->number;
  };
  const JsonValue* gauges = root.find("gauges");
  const auto gauge_last = [&](const std::string& name) {
    if (gauges == nullptr) return 0.0;
    const JsonValue* v = gauges->find(name);
    return v == nullptr ? 0.0 : v->number_or("last", 0);
  };

  const double hits = counter("cache.hits");
  const double misses = counter("cache.misses");
  const double lookups = hits + misses;
  std::printf("## Result cache\n\n");
  std::printf("lookups: %.0f  (%.0f hits / %.0f misses, %.1f%% hit ratio)\n",
              lookups, hits, misses,
              lookups > 0 ? 100.0 * hits / lookups : 0.0);
  std::printf("insertions: %.0f   evictions: %.0f   diffusions: %.0f\n",
              counter("cache.insertions"), counter("cache.evictions"),
              counter("cache.diffusions"));
  std::printf("invalidated replicas: %.0f   live replicas: %.0f\n",
              counter("cache.invalidated_replicas"),
              gauge_last("cache.replicas"));
  std::printf("network bytes saved: %.0f\n\n", counter("cache.bytes_saved"));

  // Per-host rows, for every host that shows up in any cache.hostN.*
  // instrument. std::map keys iterate sorted, so hosts print in order.
  std::map<int, bool> host_ids;
  const auto collect = [&](const JsonValue* section) {
    if (section == nullptr) return;
    for (const auto& [name, v] : section->object) {
      (void)v;
      if (name.rfind("cache.host", 0) != 0) continue;
      const std::size_t digits = std::strlen("cache.host");
      const int id = std::atoi(name.c_str() + digits);
      host_ids[id] = true;
    }
  };
  collect(counters);
  collect(gauges);
  if (host_ids.empty()) return;
  std::printf("host  hits  misses  hit_ratio  evictions  entries  bytes\n");
  for (const auto& [id, seen] : host_ids) {
    (void)seen;
    const std::string prefix = "cache.host" + std::to_string(id);
    const double h = counter(prefix + ".hits");
    const double m = counter(prefix + ".misses");
    std::printf("%-4d  %4.0f  %6.0f  %8.1f%%  %9.0f  %7.0f  %5.0f\n", id, h,
                m, h + m > 0 ? 100.0 * h / (h + m) : 0.0,
                counter(prefix + ".evictions"),
                gauge_last(prefix + ".entries"), gauge_last(prefix + ".bytes"));
  }
  std::printf("\n");
}

void print_metrics_digest(const std::string& path) {
  const JsonValue root = JsonParser(read_file(path)).parse();
  std::printf("## Metrics digest\n\n");
  if (const JsonValue* gauges = root.find("gauges");
      gauges != nullptr && !gauges->object.empty()) {
    std::printf("gauges (last / min / max / updates):\n");
    for (const auto& [name, g] : gauges->object) {
      std::printf("  %-28s %12.0f %10.0f %10.0f %10.0f\n", name.c_str(),
                  g.number_or("last", 0), g.number_or("min", 0),
                  g.number_or("max", 0), g.number_or("updates", 0));
    }
  }
  if (const JsonValue* counters = root.find("counters");
      counters != nullptr) {
    bool header = false;
    for (const auto& [name, v] : counters->object) {
      if (name.rfind("session.", 0) != 0 && name.rfind("fault.", 0) != 0 &&
          name.rfind("engine.retr", 0) != 0 &&
          name.rfind("engine.repair", 0) != 0) {
        continue;
      }
      if (!header) {
        std::printf("session/fault counters:\n");
        header = true;
      }
      std::printf("  %-28s %12.0f\n", name.c_str(), v.number);
    }
  }
  std::printf("\n");
  print_cache_digest(root);
}

// Integral values print as integers, everything else with 3 decimals —
// decision args mix host/op ids with costs and durations.
std::string format_number(double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

int print_decision_trail(const std::string& path, int max_trail) {
  const std::string text = read_file(path);
  std::istringstream in(text);
  std::string line;
  std::map<std::string, int> counts;  // "category/action" -> count
  std::vector<std::string> trail;
  int total = 0;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue rec;
    try {
      rec = JsonParser(line).parse();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s:%d: %s\n", path.c_str(), lineno, e.what());
      return 2;
    }
    const std::string category = rec.string_or("category", "?");
    const std::string action = rec.string_or("action", "?");
    ++counts[category + "/" + action];
    ++total;
    if (static_cast<int>(trail.size()) >= max_trail) continue;
    std::ostringstream f;
    f << "  t=" << format_number(rec.number_or("t", 0)) << "  " << category
      << "/" << action;
    if (const JsonValue* session = rec.find("session");
        session != nullptr && session->number >= 0) {
      f << "  session=" << static_cast<int>(session->number);
    }
    if (const JsonValue* args = rec.find("args");
        args != nullptr && !args->object.empty()) {
      f << "  {";
      bool first = true;
      for (const auto& [k, v] : args->object) {
        if (!first) f << ", ";
        first = false;
        f << k << "=";
        if (v.kind == JsonValue::Kind::kString) {
          f << v.string;
        } else if (v.kind == JsonValue::Kind::kNumber) {
          f << format_number(v.number);
        } else if (v.kind == JsonValue::Kind::kBool) {
          f << (v.boolean ? "true" : "false");
        }
      }
      f << "}";
    }
    trail.push_back(f.str());
  }

  std::printf("## Decision audit trail\n\n");
  std::printf("%d decision record(s):\n", total);
  for (const auto& [key, n] : counts) {
    std::printf("  %-28s %6d\n", key.c_str(), n);
  }
  std::printf("\n");
  for (const std::string& entry : trail) std::printf("%s\n", entry.c_str());
  if (total > static_cast<int>(trail.size())) {
    std::printf("  ... %d more (raise --max-trail to see them)\n",
                total - static_cast<int>(trail.size()));
  }
  std::printf("\n");
  return 0;
}

int run_inspect(int argc, char** argv) {
  InspectOptions opt;
  for (int i = 2; i < argc; ++i) {
    if (auto v = flag_value(argv[i], "--timeline")) {
      opt.timeline_path = *v;
    } else if (auto vr = flag_value(argv[i], "--run")) {
      opt.run_path = *vr;
    } else if (auto v2 = flag_value(argv[i], "--metrics")) {
      opt.metrics_path = *v2;
    } else if (auto v3 = flag_value(argv[i], "--decisions")) {
      opt.decisions_path = *v3;
    } else if (auto v4 = flag_value(argv[i], "--max-trail")) {
      opt.max_trail = std::atoi(v4->c_str());
    } else {
      std::fprintf(stderr,
                   "usage: wadc_report inspect [--run=FILE] "
                   "[--timeline=FILE] "
                   "[--metrics=FILE] [--decisions=FILE] [--max-trail=N]\n");
      return 2;
    }
  }
  if (opt.run_path.empty() && opt.timeline_path.empty() &&
      opt.metrics_path.empty() && opt.decisions_path.empty()) {
    std::fprintf(stderr,
                 "inspect: nothing to do — pass at least one of "
                 "--run / --timeline / --metrics / --decisions\n");
    return 2;
  }

  std::printf("# wadc run inspection\n\n");
  try {
    if (!opt.run_path.empty()) print_run_digest(opt.run_path);
    if (!opt.timeline_path.empty()) {
      const std::vector<TimelineRow> rows = load_timeline(opt.timeline_path);
      print_host_staleness(rows);
      print_session_summaries(rows);
    }
    if (!opt.metrics_path.empty()) print_metrics_digest(opt.metrics_path);
    if (!opt.decisions_path.empty()) {
      if (const int rc =
              print_decision_trail(opt.decisions_path, opt.max_trail);
          rc != 0) {
        return rc;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "inspect: %s\n", e.what());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "inspect") == 0) {
    return run_inspect(argc, argv);
  }

  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (auto v = flag_value(argv[i], "--configs")) {
      opt.configs = std::atoi(v->c_str());
    } else if (auto v2 = flag_value(argv[i], "--out")) {
      opt.out_path = *v2;
    } else {
      std::fprintf(stderr,
                   "usage: wadc_report [--configs=N] [--out=FILE]\n"
                   "       wadc_report inspect [--run=FILE] "
                   "[--timeline=FILE] "
                   "[--metrics=FILE] [--decisions=FILE] [--max-trail=N]\n");
      return 2;
    }
  }

  std::ofstream file;
  if (!opt.out_path.empty()) {
    file.open(opt.out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", opt.out_path.c_str());
      return 1;
    }
  }
  std::ostream& out = opt.out_path.empty() ? std::cout : file;

  const trace::TraceLibrary library(trace::TraceLibraryParams{}, 2026);
  exp::SweepSpec sweep;
  sweep.configs = opt.configs;
  sweep.base_seed = exp::env_seed(1000);

  const auto progress = [](int done, int total) {
    if (done % 100 == 0) {
      std::fprintf(stderr, "  ... %d/%d runs\r", done, total);
    }
  };

  out << "# wadc reproduction report\n\n";
  out << "Ranganathan, Acharya, Saltz — *Adapting to Bandwidth Variations "
         "in Wide-Area Data Combination* (ICDCS 1998)\n\n";
  out << opt.configs << " network configurations per experiment, seed "
      << sweep.base_seed << ".\n\n";

  // ---- Figure 6 ---------------------------------------------------------
  std::fprintf(stderr, "[1/5] figure 6 ...\n");
  using core::AlgorithmKind;
  const auto fig6 = exp::run_sweep(
      library, sweep,
      {AlgorithmKind::kOneShot, AlgorithmKind::kGlobal, AlgorithmKind::kLocal},
      progress);
  out << "## Relocation speedup over download-all (Figure 6)\n\n";
  out << "```\n"
      << ascii_curves({fig6[0].speedup, fig6[2].speedup, fig6[1].speedup},
                      {'o', 'l', 'G'})
      << "   o = one-shot   l = local   G = global\n```\n\n";
  const auto s6_one = exp::stats_of(fig6[0].speedup);
  const auto s6_glo = exp::stats_of(fig6[1].speedup);
  const auto s6_loc = exp::stats_of(fig6[2].speedup);
  out << "| algorithm | mean | median | p10 | p90 |\n";
  out << "|---|---|---|---|---|\n";
  char line[256];
  const auto row = [&](const char* name, const exp::SeriesStats& s) {
    std::snprintf(line, sizeof(line),
                  "| %s | %.2fx | %.2fx | %.2fx | %.2fx |\n", name, s.mean,
                  s.median, s.p10, s.p90);
    out << line;
  };
  row("one-shot", s6_one);
  row("global", s6_glo);
  row("local", s6_loc);
  std::vector<double> ratio_g_os, ratio_g_l;
  for (std::size_t i = 0; i < fig6[1].speedup.size(); ++i) {
    ratio_g_os.push_back(fig6[1].speedup[i] / fig6[0].speedup[i]);
    ratio_g_l.push_back(fig6[1].speedup[i] / fig6[2].speedup[i]);
  }
  std::snprintf(line, sizeof(line),
                "\nmedian global/one-shot ratio **%.2f** (paper ~1.40), "
                "global/local **%.2f** (paper ~1.25)\n\n",
                trace::median_of(ratio_g_os), trace::median_of(ratio_g_l));
  out << line;

  // ---- Figure 8 ----------------------------------------------------------
  std::fprintf(stderr, "[2/5] figure 8 ...\n");
  out << "## Scaling with the number of servers (Figure 8)\n\n";
  out << "| servers | one-shot | global | local |\n|---|---|---|---|\n";
  for (const int servers : {4, 8, 16}) {
    exp::SweepSpec s = sweep;
    s.experiment.num_servers = servers;
    const auto r = exp::run_sweep(library, s,
                                  {AlgorithmKind::kOneShot,
                                   AlgorithmKind::kGlobal,
                                   AlgorithmKind::kLocal},
                                  progress);
    std::snprintf(line, sizeof(line), "| %d | %.2fx | %.2fx | %.2fx |\n",
                  servers, exp::stats_of(r[0].speedup).mean,
                  exp::stats_of(r[1].speedup).mean,
                  exp::stats_of(r[2].speedup).mean);
    out << line;
  }
  out << "\n";

  // ---- Figure 9 ----------------------------------------------------------
  std::fprintf(stderr, "[3/5] figure 9 ...\n");
  out << "## Relocation period (Figure 9)\n\n```\n";
  std::vector<std::pair<double, double>> period_points;
  for (const double minutes : {2.0, 5.0, 10.0, 30.0, 60.0}) {
    exp::SweepSpec s = sweep;
    s.experiment.relocation_period_seconds = minutes * 60;
    const auto r =
        exp::run_sweep(library, s, {AlgorithmKind::kGlobal}, progress);
    period_points.push_back({minutes, exp::stats_of(r[0].speedup).mean});
  }
  double max_speedup = 0;
  for (const auto& [m, v] : period_points) max_speedup = std::max(max_speedup, v);
  for (const auto& [m, v] : period_points) {
    std::snprintf(line, sizeof(line), "%5.0f min  %-40s %.2fx\n", m,
                  bar(v, max_speedup).c_str(), v);
    out << line;
  }
  out << "```\n\n";

  // ---- Figure 10 ---------------------------------------------------------
  std::fprintf(stderr, "[4/5] figure 10 ...\n");
  out << "## Combination order (Figure 10)\n\n";
  out << "| series | binary | left-deep |\n|---|---|---|\n";
  {
    exp::SweepSpec s = sweep;
    const auto binary = exp::run_sweep(
        library, s, {AlgorithmKind::kGlobal, AlgorithmKind::kLocal},
        progress);
    s.experiment.tree_shape = core::TreeShape::kLeftDeep;
    const auto ldeep = exp::run_sweep(
        library, s, {AlgorithmKind::kGlobal, AlgorithmKind::kLocal},
        progress);
    std::snprintf(line, sizeof(line), "| global | %.2fx | %.2fx |\n",
                  exp::stats_of(binary[0].speedup).mean,
                  exp::stats_of(ldeep[0].speedup).mean);
    out << line;
    std::snprintf(line, sizeof(line), "| local | %.2fx | %.2fx |\n",
                  exp::stats_of(binary[1].speedup).mean,
                  exp::stats_of(ldeep[1].speedup).mean);
    out << line;
  }
  out << "\n";

  // ---- extensions ---------------------------------------------------------
  std::fprintf(stderr, "[5/5] extensions ...\n");
  out << "## Extensions\n\n";
  {
    exp::SweepSpec s = sweep;
    const auto r = exp::run_sweep(
        library, s,
        {AlgorithmKind::kGlobalOrder, AlgorithmKind::kReorderOnly},
        progress);
    std::snprintf(line, sizeof(line),
                  "- adaptive order+location (`global-order`): mean "
                  "**%.2fx**\n",
                  exp::stats_of(r[0].speedup).mean);
    out << line;
    std::snprintf(line, sizeof(line),
                  "- reorder-only (query-scrambling analog): mean "
                  "**%.2fx** — §1's \"inherently limited\" claim, "
                  "quantified\n",
                  exp::stats_of(r[1].speedup).mean);
    out << line;
  }
  out << "\nSee EXPERIMENTS.md for the full-scale numbers and the "
         "paper-vs-measured discussion.\n";

  std::fprintf(stderr, "done.\n");
  if (!opt.out_path.empty()) {
    std::fprintf(stderr, "report written to %s\n", opt.out_path.c_str());
  }
  return 0;
}
