#!/usr/bin/env bash
# Release-bench smoke: run the fig6 sweep single-threaded and fail if
# throughput fell below a floor.
#
# CI runners differ wildly from the machines that produced the committed
# BENCH_*.json trajectory, so this is a smoke against order-of-magnitude
# regressions (an accidental O(n^2), a debug assert in the hot path, the
# arena silently disabled), not a precise gate. The floor is deliberately
# far below any healthy number for the given WADC_CONFIGS.
#
# usage: check_bench_regress.sh <fig6 bench binary> <min runs/s> [configs]
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 <fig6 bench binary> <min runs/s> [configs]" >&2
  exit 2
fi

bench_bin=$1
min_rps=$2
configs=${3:-30}

out=$(mktemp /tmp/bench_smoke.XXXXXX.json)
trap 'rm -f "$out"' EXIT

WADC_CONFIGS=$configs "$bench_bin" --jobs=1 --bench-out="$out" >/dev/null

python3 - "$out" "$min_rps" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
floor = float(sys.argv[2])
rps = report["runs_per_second"]
print(f"[bench-smoke] {report['name']}: {rps:.1f} runs/s "
      f"(jobs={report['jobs']}, runs={report['runs']}, "
      f"hw={report.get('hardware_concurrency', '?')} threads, "
      f"build={report.get('build_type', '?')}, floor={floor})")
assert report["jobs"] == 1, report
assert rps >= floor, (
    f"jobs=1 throughput regressed: {rps:.1f} runs/s < floor {floor}")
EOF
