#!/usr/bin/env bash
# Layering guard: each library under src/ may include only from itself and
# the layers below it (see docs/ARCHITECTURE.md). In particular, src/core
# must not reach up into dataflow/, and src/net must not reach up into
# monitor/ or dataflow/ — the refactor that split the engine into
# transport / policy / change-over layers depends on those edges staying
# absent. The session runtime sits between dataflow and exp: it may include
# dataflow/net/monitor, and nothing at or below dataflow may include
# session/.
#
# Usage: check_layering.sh [repo-root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

# layer -> directories it may include from (itself is always allowed).
allowed() {
  case "$1" in
    common)   echo "" ;;
    sim)      echo "common" ;;
    obs)      echo "common sim" ;;
    trace)    echo "common sim" ;;
    workload) echo "common" ;;
    net)      echo "common sim obs trace" ;;
    monitor)  echo "common sim obs trace net" ;;
    fault)    echo "common sim obs trace net" ;;
    core)     echo "common sim obs trace net monitor" ;;
    cache)    echo "common sim obs trace net monitor core workload" ;;
    dataflow) echo "common sim obs trace net monitor fault core workload cache" ;;
    session)  echo "common sim obs trace net monitor core workload cache dataflow" ;;
    exp)      echo "common sim obs trace net monitor fault core workload cache dataflow session" ;;
    *)        echo "__unknown__" ;;
  esac
}

status=0
for dir in src/*/; do
  layer="$(basename "$dir")"
  allow="$layer $(allowed "$layer")"
  if [ "$(allowed "$layer")" = "__unknown__" ]; then
    echo "layering: unknown layer src/$layer — add it to tools/check_layering.sh"
    status=1
    continue
  fi
  while IFS=: read -r file line include; do
    target="${include#*\"}"
    target="${target%%/*}"
    ok=0
    for a in $allow; do
      [ "$target" = "$a" ] && ok=1 && break
    done
    if [ "$ok" -eq 0 ]; then
      echo "layering violation: $file:$line includes \"$target/\" (src/$layer may only include: $allow)"
      status=1
    fi
  done < <(grep -rn '#include "[a-z_]*/' "$dir" --include='*.h' --include='*.cc' -o 2>/dev/null)
done

# Finer-grained rule inside src/session: the overload-control module
# (overload.* and admission.*) is pure policy — backpressure signals in,
# decisions out. It must stay engine-free so controllers remain unit-testable
# with hand-built signals; only the SessionManager wires policy to engines.
for f in src/session/overload.h src/session/overload.cc \
         src/session/admission.h src/session/admission.cc; do
  [ -f "$f" ] || { echo "layering: missing $f"; status=1; continue; }
  while IFS=: read -r line include; do
    echo "layering violation: $f:$line includes \"${include#*\"}\" (the overload module must not depend on dataflow/)"
    status=1
  done < <(grep -n '#include "dataflow/' "$f" -o 2>/dev/null)
done

# Finer-grained rules around the result cache (docs/CACHING.md):
#   - src/cache is engine-free policy + bookkeeping. It must never include
#     dataflow/ or session/ so the fabric stays unit-testable with
#     hand-built keys and images (the coarse table above also enforces
#     this; the explicit check keeps the intent greppable).
#   - Only the engine/session/exp layers (plus tools, benches and tests)
#     may consume cache/: layers at or below workload must not know the
#     cache exists.
for f in src/cache/*.h src/cache/*.cc; do
  [ -f "$f" ] || { echo "layering: missing src/cache sources"; status=1; continue; }
  while IFS=: read -r line include; do
    echo "layering violation: $f:$line includes \"${include#*\"}\" (src/cache must not depend on dataflow/ or session/)"
    status=1
  done < <(grep -n '#include "\(dataflow\|session\)/' "$f" -o 2>/dev/null)
done

while IFS=: read -r file line include; do
  case "$file" in
    src/cache/*|src/dataflow/*|src/session/*|src/exp/*) continue ;;
  esac
  echo "layering violation: $file:$line includes cache/ (below the engine, only dataflow/session/exp may include the result cache)"
  status=1
done < <(grep -rn '#include "cache/' src --include='*.h' --include='*.cc' 2>/dev/null)

# Finer-grained rules around the transport seam (docs/ARCHITECTURE.md,
# "Transport backends"):
#   - src/net/tcp is the realtime socket layer. It must stay simulator-free
#     (raw fds, monotonic seconds, function-pointer callbacks) so it can be
#     tested and reasoned about without the discrete-event kernel; the
#     realtime bridge (src/net/realtime.*) is the single translation point.
#   - The tcp backend is an implementation detail of src/net. Production
#     code outside it talks to net/transport.h and net/realtime.h, never to
#     net/tcp/ directly. (Isolation tests under tests/ are exempt: testing
#     the backend without the engine is the point.)
for f in src/net/tcp/*.h src/net/tcp/*.cc; do
  [ -f "$f" ] || { echo "layering: missing src/net/tcp sources"; status=1; continue; }
  while IFS=: read -r line include; do
    echo "layering violation: $f:$line includes \"${include#*\"}\" (src/net/tcp must not depend on sim/ or dataflow/)"
    status=1
  done < <(grep -n '#include "\(sim\|dataflow\)/' "$f" -o 2>/dev/null)
done

while IFS=: read -r file line include; do
  case "$file" in
    src/net/*) continue ;;
  esac
  echo "layering violation: $file:$line includes net/tcp/ (only src/net may include the tcp backend; use net/transport.h or net/realtime.h)"
  status=1
done < <(grep -rn '#include "net/tcp/' src tools --include='*.h' --include='*.cc' 2>/dev/null)

if [ "$status" -eq 0 ]; then
  echo "layering: OK"
fi
exit "$status"
