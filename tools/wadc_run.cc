// wadc_run — command-line driver for wide-area data combination experiments.
//
// Runs any of the paper's placement algorithms on sampled or user-supplied
// network configurations and prints per-configuration results plus summary
// statistics, in human-readable or CSV form.
//
// Examples:
//   wadc_run --algorithm=global --servers=8 --configs=20
//   wadc_run --algorithm=local --extras=3 --shape=left-deep --csv
//   wadc_run --algorithm=one-shot --trace-set=mylinks.txt --seed=5
//   wadc_run --dump-traces=pool.txt          # export the synthetic pool
//
// Observability (see docs/OBSERVABILITY.md): --trace-out records the final
// configuration's run as Chrome trace-event JSON (open in
// https://ui.perfetto.dev), --metrics-out dumps its counters/histograms.
// Both files are byte-identical across same-seed runs:
//   wadc_run --algorithm=global --trace-out=t.json --metrics-out=m.json
#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_config.h"
#include "exp/bench_support.h"
#include "exp/experiment.h"
#include "exp/export.h"
#include "fault/spec_io.h"
#include "exp/parallel.h"
#include "exp/report.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/timeline.h"
#include "obs/tracer.h"
#include "session/session_spec.h"
#include "session/session_stats.h"
#include "trace/io.h"
#include "trace/library.h"
#include "trace/stats.h"

namespace {

using namespace wadc;

struct Options {
  core::AlgorithmKind algorithm = core::AlgorithmKind::kGlobal;
  exp::Backend backend = exp::Backend::kSim;
  double time_scale = 600;  // tcp backend: simulated seconds per wall second
  int servers = 8;
  int iterations = 180;
  core::TreeShape shape = core::TreeShape::kCompleteBinary;
  double period_seconds = 600;
  int extras = 0;
  int configs = 1;
  int jobs = -1;  // -1 = unset (resolve via WADC_JOBS); 0 = all hw threads
  std::uint64_t seed = 1000;
  std::uint64_t library_seed = 2026;
  bool csv = false;
  bool with_baseline = true;
  std::string trace_set_path;
  std::string cache_spec;      // --cache-spec=... (full grammar)
  std::string cache_capacity;  // --cache-capacity=BYTES[k|m|g] shorthand
  std::string cache_policy;    // --cache-policy=lru|cost (needs a capacity)
  std::string fault_spec_path;  // fault schedule (see docs/FAULTS.md)
  std::string sessions_spec_path;  // multi-client spec (docs/SESSIONS.md)
  int num_clients = 0;  // shorthand: N sessions at t=0, unbounded admission
  std::string dump_traces_path;
  std::string dump_run_path;  // JSON of the final configuration's run
  std::string trace_out_path;    // Chrome trace JSON of the final run
  std::string metrics_out_path;  // metrics JSON of the final run
  std::string timeline_out_path;   // sim-time timeline of the final run
  std::string decisions_out_path;  // decision log (JSONL) of the final run
  std::string profile_out_path;  // wall-clock phase profile (whole invocation)
  sim::SimTime timeline_interval_seconds = 60;
  std::string bench_out_path;    // JSON perf report for the whole invocation
};

void usage() {
  std::fprintf(
      stderr,
      "usage: wadc_run [options]\n"
      "  --algorithm=download-all|one-shot|global|local|global-order|\n"
      "              reorder-only\n"
      "                         placement algorithm (default global)\n"
      "  --backend=sim|tcp      transport backend (default sim). sim is the\n"
      "                         deterministic discrete-event model; tcp moves\n"
      "                         every transfer over real loopback sockets in\n"
      "                         scaled wall-clock time (forces --jobs=1;\n"
      "                         timings vary run to run)\n"
      "  --time-scale=X         tcp backend: simulated seconds per wall\n"
      "                         second (default 600)\n"
      "  --servers=N            number of data servers (default 8)\n"
      "  --iterations=N         partitions per server (default 180)\n"
      "  --shape=binary|left-deep|right-deep (default binary)\n"
      "  --period=SECONDS       relocation period (default 600)\n"
      "  --extras=K             local algorithm's extra candidates (default 0)\n"
      "  --configs=N            network configurations to run (default 1)\n"
      "  --jobs=N               worker threads for the configuration runs\n"
      "                         (0 = all hardware threads; default: WADC_JOBS,"
      "\n                         else serial). Output is byte-identical for\n"
      "                         every jobs value.\n"
      "  --seed=N               base configuration seed (default 1000)\n"
      "  --library-seed=N       trace pool seed (default 2026)\n"
      "  --trace-set=FILE       use traces from FILE instead of synthesizing\n"
      "  --cache-spec=SPEC      enable the result cache from a spec string\n"
      "                         (capacity=BYTES[k|m|g][,policy=lru|cost]\n"
      "                         [,diffusion=on|off], see docs/CACHING.md)\n"
      "  --cache-capacity=BYTES[k|m|g]\n"
      "                         shorthand: enable the cache with this per-host\n"
      "                         capacity and default policy (lru)\n"
      "  --cache-policy=lru|cost\n"
      "                         eviction policy (requires --cache-capacity)\n"
      "  --fault-spec=FILE      inject faults from FILE (crash/blackout/drop\n"
      "                         lines, see docs/FAULTS.md) and run the\n"
      "                         engine fault-tolerant\n"
      "  --sessions-spec=FILE   run concurrent query sessions from FILE\n"
      "                         (session/open/closed/admission lines, see\n"
      "                         docs/SESSIONS.md) over one shared network\n"
      "  --num-clients=N        shorthand for N sessions all arriving at\n"
      "                         t=0 with unbounded admission\n"
      "  --dump-traces=FILE     write the synthetic pool to FILE and exit\n"
      "  --dump-run=FILE        write the last run's stats as JSON\n"
      "  --trace-out=FILE       write the last run's Chrome trace-event JSON\n"
      "  --metrics-out=FILE     write the last run's metrics as JSON\n"
      "  --timeline-out=FILE    write the last run's sim-time timeline\n"
      "                         (.json for JSON, anything else CSV)\n"
      "  --timeline-interval=SECONDS\n"
      "                         timeline sampling interval (default 60)\n"
      "  --decisions-out=FILE   write the last run's adaptation-decision log\n"
      "                         (one JSON object per line)\n"
      "  --profile-out=FILE     write a wall-clock phase profile of this\n"
      "                         invocation (non-deterministic; never merge\n"
      "                         into golden artifacts)\n"
      "  --bench-out=FILE       write a JSON perf report (name, jobs, runs,\n"
      "                         wall_seconds, runs_per_second)\n"
      "  --no-baseline          skip the download-all baseline run\n"
      "  --csv                  machine-readable output\n");
}

std::optional<std::string> flag_value(const char* arg, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::string(arg + len + 1);
  }
  return std::nullopt;
}

// Strict numeric parsing: the whole value must be consumed, so typos like
// --servers=8x or --period=fast are rejected instead of silently becoming 0.
bool to_int(const std::string& s, const char* flag, int& out) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (s.empty() || *end != '\0' || errno != 0 || v < INT_MIN || v > INT_MAX) {
    std::fprintf(stderr, "invalid integer for %s: '%s'\n", flag, s.c_str());
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

bool to_u64(const std::string& s, const char* flag, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || *end != '\0' || errno != 0 || s[0] == '-') {
    std::fprintf(stderr, "invalid integer for %s: '%s'\n", flag, s.c_str());
    return false;
  }
  out = v;
  return true;
}

bool to_double(const std::string& s, const char* flag, double& out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || *end != '\0' || errno != 0) {
    std::fprintf(stderr, "invalid number for %s: '%s'\n", flag, s.c_str());
    return false;
  }
  out = v;
  return true;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (auto v = flag_value(arg, "--algorithm")) {
      if (*v == "download-all") {
        opt.algorithm = core::AlgorithmKind::kDownloadAll;
      } else if (*v == "one-shot") {
        opt.algorithm = core::AlgorithmKind::kOneShot;
      } else if (*v == "global") {
        opt.algorithm = core::AlgorithmKind::kGlobal;
      } else if (*v == "local") {
        opt.algorithm = core::AlgorithmKind::kLocal;
      } else if (*v == "global-order") {
        opt.algorithm = core::AlgorithmKind::kGlobalOrder;
      } else if (*v == "reorder-only") {
        opt.algorithm = core::AlgorithmKind::kReorderOnly;
      } else {
        std::fprintf(stderr, "unknown algorithm '%s'\n", v->c_str());
        return false;
      }
    } else if (auto vb = flag_value(arg, "--backend")) {
      if (*vb == "sim") {
        opt.backend = exp::Backend::kSim;
      } else if (*vb == "tcp") {
        opt.backend = exp::Backend::kTcp;
      } else {
        std::fprintf(stderr, "unknown backend '%s' (want sim or tcp)\n",
                     vb->c_str());
        return false;
      }
    } else if (auto vts = flag_value(arg, "--time-scale")) {
      if (!to_double(*vts, "--time-scale", opt.time_scale)) return false;
      if (opt.time_scale <= 0) {
        std::fprintf(stderr, "--time-scale must be positive\n");
        return false;
      }
    } else if (auto v2 = flag_value(arg, "--servers")) {
      if (!to_int(*v2, "--servers", opt.servers)) return false;
    } else if (auto v3 = flag_value(arg, "--iterations")) {
      if (!to_int(*v3, "--iterations", opt.iterations)) return false;
    } else if (auto v4 = flag_value(arg, "--shape")) {
      if (*v4 == "binary") {
        opt.shape = core::TreeShape::kCompleteBinary;
      } else if (*v4 == "left-deep") {
        opt.shape = core::TreeShape::kLeftDeep;
      } else if (*v4 == "right-deep") {
        opt.shape = core::TreeShape::kRightDeep;
      } else {
        std::fprintf(stderr, "unknown shape '%s'\n", v4->c_str());
        return false;
      }
    } else if (auto v5 = flag_value(arg, "--period")) {
      if (!to_double(*v5, "--period", opt.period_seconds)) return false;
    } else if (auto v6 = flag_value(arg, "--extras")) {
      if (!to_int(*v6, "--extras", opt.extras)) return false;
    } else if (auto v7 = flag_value(arg, "--configs")) {
      if (!to_int(*v7, "--configs", opt.configs)) return false;
    } else if (auto vj = flag_value(arg, "--jobs")) {
      if (!to_int(*vj, "--jobs", opt.jobs)) return false;
      if (opt.jobs < 0) {
        std::fprintf(stderr, "--jobs must be >= 0 (0 = all hardware "
                     "threads)\n");
        return false;
      }
    } else if (auto v8 = flag_value(arg, "--seed")) {
      if (!to_u64(*v8, "--seed", opt.seed)) return false;
    } else if (auto v9 = flag_value(arg, "--library-seed")) {
      if (!to_u64(*v9, "--library-seed", opt.library_seed)) return false;
    } else if (auto v10 = flag_value(arg, "--trace-set")) {
      opt.trace_set_path = *v10;
    } else if (auto vcs = flag_value(arg, "--cache-spec")) {
      if (vcs->empty()) {
        std::fprintf(stderr, "--cache-spec requires a spec string\n");
        return false;
      }
      opt.cache_spec = *vcs;
    } else if (auto vcc = flag_value(arg, "--cache-capacity")) {
      if (vcc->empty()) {
        std::fprintf(stderr, "--cache-capacity requires a byte count\n");
        return false;
      }
      opt.cache_capacity = *vcc;
    } else if (auto vcp = flag_value(arg, "--cache-policy")) {
      if (!cache::parse_eviction_policy(*vcp)) {
        std::fprintf(stderr, "unknown cache policy '%s' (want lru or cost)\n",
                     vcp->c_str());
        return false;
      }
      opt.cache_policy = *vcp;
    } else if (auto vf = flag_value(arg, "--fault-spec")) {
      if (vf->empty()) {
        std::fprintf(stderr, "--fault-spec requires a file path\n");
        return false;
      }
      opt.fault_spec_path = *vf;
    } else if (auto vs = flag_value(arg, "--sessions-spec")) {
      if (vs->empty()) {
        std::fprintf(stderr, "--sessions-spec requires a file path\n");
        return false;
      }
      opt.sessions_spec_path = *vs;
    } else if (auto vn = flag_value(arg, "--num-clients")) {
      if (!to_int(*vn, "--num-clients", opt.num_clients)) return false;
      if (opt.num_clients < 1) {
        std::fprintf(stderr, "--num-clients must be >= 1\n");
        return false;
      }
    } else if (auto v11 = flag_value(arg, "--dump-traces")) {
      opt.dump_traces_path = *v11;
    } else if (auto v12 = flag_value(arg, "--dump-run")) {
      opt.dump_run_path = *v12;
    } else if (auto v13 = flag_value(arg, "--trace-out")) {
      if (v13->empty()) {
        std::fprintf(stderr, "--trace-out requires a file path\n");
        return false;
      }
      opt.trace_out_path = *v13;
    } else if (auto v14 = flag_value(arg, "--metrics-out")) {
      if (v14->empty()) {
        std::fprintf(stderr, "--metrics-out requires a file path\n");
        return false;
      }
      opt.metrics_out_path = *v14;
    } else if (auto vt = flag_value(arg, "--timeline-out")) {
      if (vt->empty()) {
        std::fprintf(stderr, "--timeline-out requires a file path\n");
        return false;
      }
      opt.timeline_out_path = *vt;
    } else if (auto vti = flag_value(arg, "--timeline-interval")) {
      if (!to_double(*vti, "--timeline-interval",
                     opt.timeline_interval_seconds)) {
        return false;
      }
      if (opt.timeline_interval_seconds <= 0) {
        std::fprintf(stderr, "--timeline-interval must be positive\n");
        return false;
      }
    } else if (auto vd = flag_value(arg, "--decisions-out")) {
      if (vd->empty()) {
        std::fprintf(stderr, "--decisions-out requires a file path\n");
        return false;
      }
      opt.decisions_out_path = *vd;
    } else if (auto vp = flag_value(arg, "--profile-out")) {
      if (vp->empty()) {
        std::fprintf(stderr, "--profile-out requires a file path\n");
        return false;
      }
      opt.profile_out_path = *vp;
    } else if (auto v15 = flag_value(arg, "--bench-out")) {
      if (v15->empty()) {
        std::fprintf(stderr, "--bench-out requires a file path\n");
        return false;
      }
      opt.bench_out_path = *v15;
    } else if (std::strcmp(arg, "--csv") == 0) {
      opt.csv = true;
    } else if (std::strcmp(arg, "--no-baseline") == 0) {
      opt.with_baseline = false;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg);
      return false;
    }
  }
  if (opt.servers < 2 || opt.iterations < 1 || opt.configs < 1) {
    std::fprintf(stderr, "servers/iterations/configs must be positive\n");
    return false;
  }
  if (!opt.sessions_spec_path.empty() && opt.num_clients > 0) {
    std::fprintf(stderr,
                 "--sessions-spec and --num-clients are mutually exclusive\n");
    return false;
  }
  if (!opt.cache_spec.empty() &&
      (!opt.cache_capacity.empty() || !opt.cache_policy.empty())) {
    std::fprintf(stderr, "--cache-spec already carries capacity and policy; "
                 "it is mutually exclusive with --cache-capacity and "
                 "--cache-policy\n");
    return false;
  }
  if (!opt.cache_policy.empty() && opt.cache_capacity.empty()) {
    std::fprintf(stderr,
                 "--cache-policy requires --cache-capacity (or fold both "
                 "into --cache-spec)\n");
    return false;
  }
  if ((!opt.cache_spec.empty() || !opt.cache_capacity.empty()) &&
      !opt.dump_traces_path.empty()) {
    std::fprintf(stderr, "--dump-traces runs no simulation; the cache flags "
                 "are meaningless with it\n");
    return false;
  }
  if (opt.backend == exp::Backend::kTcp && opt.jobs > 1) {
    // Every tcp run opens a full loopback socket mesh and paces against the
    // one wall clock; concurrent runs would contend for both.
    std::fprintf(stderr, "note: --backend=tcp forces --jobs=1\n");
    opt.jobs = 1;
  }
  return true;
}

// Worker-thread count for the configuration runs (shared by both modes).
int resolve_run_jobs(const Options& opt) {
  if (opt.backend == exp::Backend::kTcp) return 1;
  return opt.jobs < 0    ? exp::resolve_jobs(0)
         : opt.jobs == 0 ? static_cast<int>(std::max(
                               1u, std::thread::hardware_concurrency()))
                         : opt.jobs;
}

// Per-run observability sinks (attached to the final configuration's run)
// shared by both modes.
struct RunObs {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::DecisionLog decisions;
  obs::Timeline timeline;

  // True when any per-run export was requested.
  static bool wanted(const Options& opt) {
    return !opt.trace_out_path.empty() || !opt.metrics_out_path.empty() ||
           !opt.timeline_out_path.empty() || !opt.decisions_out_path.empty();
  }

  // Points spec-level obs at the sinks whose exports were requested.
  void attach(const Options& opt, obs::Obs& obs) {
    obs.tracer = opt.trace_out_path.empty() ? nullptr : &tracer;
    obs.metrics = opt.metrics_out_path.empty() ? nullptr : &metrics;
    obs.decisions = opt.decisions_out_path.empty() ? nullptr : &decisions;
    obs.timeline = opt.timeline_out_path.empty() ? nullptr : &timeline;
  }

  // Writes every requested artifact. Returns 0 on success, 2 after the
  // first failure: a run whose requested observability artifacts cannot be
  // written must not exit 0.
  int export_all(const Options& opt, const obs::Profiler* profiler) const {
    struct Export {
      const char* what;
      const std::string* path;
      std::function<void(const std::string&)> write;
    };
    const std::vector<Export> exports = {
        {"trace", &opt.trace_out_path,
         [this](const std::string& p) { tracer.write_chrome_json_file(p); }},
        {"metrics", &opt.metrics_out_path,
         [this](const std::string& p) { metrics.write_json_file(p); }},
        {"timeline", &opt.timeline_out_path,
         [this](const std::string& p) { timeline.write_file(p); }},
        {"decision log", &opt.decisions_out_path,
         [this](const std::string& p) { decisions.write_jsonl_file(p); }},
        {"profile", &opt.profile_out_path,
         [profiler](const std::string& p) {
           if (profiler != nullptr) profiler->write_json_file(p);
         }},
    };
    for (const Export& e : exports) {
      if (e.path->empty()) continue;
      try {
        e.write(*e.path);
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "failed to write %s: %s\n", e.what, ex.what());
        return 2;
      }
    }
    return 0;
  }
};

// Multi-client session mode: every configuration runs `sessions` concurrent
// query sessions over one shared network and prints aggregate response-time
// and fairness statistics. Parallel over configurations like the normal
// mode; output is byte-identical for any --jobs value.
int run_session_mode(const Options& opt, const exp::ExperimentSpec& base_spec,
                     const trace::TraceLibrary& library,
                     const session::SessionSpec& sessions,
                     obs::Profiler* profiler) {
  const char* policy =
      session::admission_policy_name(sessions.admission.policy);
  if (opt.csv) {
    std::printf("config_seed,algorithm,policy,sessions,completed,"
                "mean_response_s,p95_response_s,mean_queue_s,jain_fairness,"
                "throughput_per_s,makespan_s,shed,deferred,degraded,"
                "goodput_per_hour\n");
  } else {
    std::printf("wadc_run: %s, %d servers, %d iterations, %s tree, "
                "%d session(s), admission %s, %d configuration(s)\n\n",
                core::algorithm_name(opt.algorithm), opt.servers,
                opt.iterations, core::tree_shape_name(opt.shape),
                sessions.total_sessions(), policy, opt.configs);
    std::printf("config    sessions  done  mean_resp     p95_resp      "
                "mean_queue  jain   makespan\n");
  }

  const bool want_obs = RunObs::wanted(opt);
  RunObs run_obs;

  const int jobs = resolve_run_jobs(opt);
  std::vector<session::SessionStats> outcomes(
      static_cast<std::size_t>(opt.configs));
  const exp::WallTimer timer;
  exp::parallel_for(opt.configs, jobs, [&](int c, int worker) {
    obs::Profiler::Scope run_scope(profiler, "session_run", worker);
    exp::ExperimentSpec s = base_spec;
    s.config_seed = opt.seed + static_cast<std::uint64_t>(c);
    s.obs = {};
    if (want_obs && c == opt.configs - 1) run_obs.attach(opt, s.obs);
    outcomes[static_cast<std::size_t>(c)] =
        exp::run_session_experiment(library, s, sessions);
  });
  const double wall_seconds = timer.seconds();

  int exit_code = 0;
  std::vector<double> mean_responses;
  for (int c = 0; c < opt.configs; ++c) {
    const session::SessionStats& st =
        outcomes[static_cast<std::size_t>(c)];
    const std::uint64_t config_seed =
        opt.seed + static_cast<std::uint64_t>(c);
    if (!opt.dump_run_path.empty() && c == opt.configs - 1) {
      try {
        exp::write_sessions_json_file(st, opt.dump_run_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "failed to dump run: %s\n", e.what());
        exit_code = 2;
      }
    }
    mean_responses.push_back(st.mean_response_seconds());
    if (opt.csv) {
      std::printf("%llu,%s,%s,%d,%d,%.3f,%.3f,%.3f,%.4f,%.6f,%.3f,"
                  "%d,%d,%d,%.4f\n",
                  static_cast<unsigned long long>(config_seed),
                  core::algorithm_name(opt.algorithm), policy,
                  st.total_count(), st.completed_count(),
                  st.mean_response_seconds(), st.p95_response_seconds(),
                  st.mean_queue_seconds(), st.jain_fairness(),
                  st.aggregate_throughput(), st.makespan_seconds(),
                  st.shed_count(), st.deferred_count(), st.degraded_count(),
                  st.goodput_per_hour());
    } else {
      std::printf("%-9llu %-9d %-5d %9.1f s %11.1f s %9.1f s  %.3f  "
                  "%9.1f s\n",
                  static_cast<unsigned long long>(config_seed),
                  st.total_count(), st.completed_count(),
                  st.mean_response_seconds(), st.p95_response_seconds(),
                  st.mean_queue_seconds(), st.jain_fairness(),
                  st.makespan_seconds());
    }
  }

  if (!opt.bench_out_path.empty()) {
    exp::BenchReport report;
    report.name = "wadc_run";
    report.jobs = jobs;
    report.runs = static_cast<long long>(opt.configs) *
                  sessions.total_sessions();
    report.wall_seconds = wall_seconds;
    try {
      exp::write_bench_json_file(report, opt.bench_out_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write bench report: %s\n", e.what());
      exit_code = 2;
    }
  }
  if (const int rc = run_obs.export_all(opt, profiler); rc != 0) {
    exit_code = rc;
  }

  if (!opt.csv && opt.configs > 1) {
    std::printf("\nsummary over %d configurations:\n", opt.configs);
    std::printf("  mean response   mean %9.1f s   median %9.1f s\n",
                trace::mean_of(mean_responses),
                trace::median_of(mean_responses));
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }

  // Trace pool: synthetic by default, or loaded from a file.
  std::optional<trace::TraceLibrary> library;
  if (!opt.trace_set_path.empty()) {
    try {
      library.emplace(trace::load_trace_set_file(opt.trace_set_path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to load traces: %s\n", e.what());
      return 1;
    }
  } else {
    library.emplace(trace::TraceLibraryParams{}, opt.library_seed);
  }

  if (!opt.dump_traces_path.empty()) {
    std::vector<trace::BandwidthTrace> pool;
    for (std::size_t i = 0; i < library->size(); ++i) {
      pool.push_back(library->trace(i));
    }
    try {
      trace::save_trace_set_file(pool, opt.dump_traces_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to dump traces: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %zu traces to %s\n", pool.size(),
                opt.dump_traces_path.c_str());
    return 0;
  }

  exp::ExperimentSpec spec;
  spec.algorithm = opt.algorithm;
  spec.num_servers = opt.servers;
  spec.iterations = opt.iterations;
  spec.tree_shape = opt.shape;
  spec.relocation_period_seconds = opt.period_seconds;
  spec.local_extra_candidates = opt.extras;
  spec.backend = opt.backend;
  spec.tcp_time_scale = opt.time_scale;

  if (!opt.cache_spec.empty() || !opt.cache_capacity.empty()) {
    std::string text = opt.cache_spec;
    if (text.empty()) {
      text = "capacity=" + opt.cache_capacity;
      if (!opt.cache_policy.empty()) text += ",policy=" + opt.cache_policy;
    }
    try {
      spec.cache = cache::parse_cache_spec(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    if (const std::string problem = spec.cache.validate(); !problem.empty()) {
      std::fprintf(stderr, "bad cache config: %s\n", problem.c_str());
      return 2;
    }
  }

  // Reject unusable parameters with a message and exit code 2 (usage error)
  // instead of tripping an engine assertion deep inside the first run.
  if (const std::string problem = spec.network.validate(); !problem.empty()) {
    std::fprintf(stderr, "bad network parameters: %s\n", problem.c_str());
    return 2;
  }
  if (const std::string problem = dataflow::validate(
          spec.engine_params(opt.seed));
      !problem.empty()) {
    std::fprintf(stderr, "bad engine parameters: %s\n", problem.c_str());
    return 2;
  }
  if (!opt.fault_spec_path.empty()) {
    try {
      spec.fault = fault::load_fault_spec_file(opt.fault_spec_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to load fault spec: %s\n", e.what());
      return 2;
    }
    if (const std::string problem = spec.fault.validate(opt.servers + 1);
        !problem.empty()) {
      std::fprintf(stderr, "bad fault spec: %s\n", problem.c_str());
      return 2;
    }
  }
  const bool faulting = !spec.fault.empty();
  spec.timeline_sample_seconds = opt.timeline_interval_seconds;

  // Wall-clock profiling of this invocation (explicitly non-deterministic;
  // exported through its own channel only).
  std::unique_ptr<obs::Profiler> profiler;
  if (!opt.profile_out_path.empty()) {
    profiler = std::make_unique<obs::Profiler>();
  }

  if (!opt.sessions_spec_path.empty() || opt.num_clients > 0) {
    session::SessionSpec sessions;
    if (!opt.sessions_spec_path.empty()) {
      try {
        sessions = session::load_session_spec_file(opt.sessions_spec_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "failed to load sessions spec: %s\n", e.what());
        return 2;
      }
    } else {
      sessions = session::SessionSpec::concurrent_clients(opt.num_clients);
    }
    return run_session_mode(opt, spec, *library, sessions, profiler.get());
  }

  if (!opt.csv) {
    std::printf("wadc_run: %s, %d servers, %d iterations, %s tree, period "
                "%.0f s, %d configuration(s)%s\n\n",
                core::algorithm_name(opt.algorithm), opt.servers,
                opt.iterations, core::tree_shape_name(opt.shape),
                opt.period_seconds, opt.configs,
                opt.backend == exp::Backend::kTcp
                    ? ", tcp loopback backend"
                    : "");
  }

  if (opt.csv) {
    std::printf("config_seed,algorithm,completion_s,interarrival_s,"
                "speedup,relocations%s\n",
                faulting ? ",completed,faults,retries,repairs,"
                           "recovery_s,abort_reason"
                         : "");
  } else if (faulting) {
    std::printf("config    completion  interarrival  speedup  relocations  "
                "ok  faults  retries  repairs\n");
  } else {
    std::printf("config    completion  interarrival  speedup  relocations\n");
  }

  // Observability: attach the per-run sinks to the final configuration's
  // main-algorithm run (the same run --dump-run exports). Only that one job
  // touches the sinks, so no merging is needed here.
  const bool want_obs = RunObs::wanted(opt);
  RunObs run_obs;

  // Every configuration (baseline + algorithm under study) is an
  // independent job; results land in index-keyed slots and are printed in
  // configuration order afterwards, so output is byte-identical for any
  // --jobs value.
  const int jobs = resolve_run_jobs(opt);
  struct ConfigOutcome {
    double base_time = 0;
    exp::RunResult run;
  };
  std::vector<ConfigOutcome> outcomes(
      static_cast<std::size_t>(opt.configs));
  const exp::WallTimer timer;
  exp::parallel_for(opt.configs, jobs, [&](int c, int worker) {
    exp::ExperimentSpec s = spec;
    s.config_seed = opt.seed + static_cast<std::uint64_t>(c);
    s.obs = {};
    if (want_obs && c == opt.configs - 1) run_obs.attach(opt, s.obs);
    ConfigOutcome& out = outcomes[static_cast<std::size_t>(c)];
    if (opt.with_baseline) {
      obs::Profiler::Scope base_scope(profiler.get(), "baseline_run", worker);
      exp::ExperimentSpec base = s;
      base.algorithm = core::AlgorithmKind::kDownloadAll;
      base.obs = {};  // trace the algorithm under study, not the baseline
      out.base_time = exp::run_experiment(*library, base).completion_seconds;
    }
    obs::Profiler::Scope run_scope(profiler.get(), "engine_run", worker);
    out.run = exp::run_experiment(*library, s);
  });
  const double wall_seconds = timer.seconds();

  int exit_code = 0;
  std::vector<double> speedups, completions, interarrivals;
  for (int c = 0; c < opt.configs; ++c) {
    const ConfigOutcome& out = outcomes[static_cast<std::size_t>(c)];
    const exp::RunResult& r = out.run;
    const std::uint64_t config_seed =
        opt.seed + static_cast<std::uint64_t>(c);
    if (!opt.dump_run_path.empty() && c == opt.configs - 1) {
      try {
        exp::write_run_json_file(r.stats, opt.dump_run_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "failed to dump run: %s\n", e.what());
        exit_code = 2;
      }
    }
    const double speedup =
        opt.with_baseline ? out.base_time / r.completion_seconds : 0.0;
    speedups.push_back(speedup);
    completions.push_back(r.completion_seconds);
    interarrivals.push_back(r.mean_interarrival_seconds);

    const dataflow::FailureSummary& fs = r.stats.failure_summary;
    if (opt.csv && faulting) {
      std::printf("%llu,%s,%.3f,%.3f,%.3f,%d,%d,%d,%llu,%d,%.3f,%s\n",
                  static_cast<unsigned long long>(config_seed),
                  core::algorithm_name(opt.algorithm), r.completion_seconds,
                  r.mean_interarrival_seconds, speedup, r.stats.relocations,
                  r.stats.completed ? 1 : 0, fs.faults_injected,
                  static_cast<unsigned long long>(fs.transfer_retries),
                  fs.repair_relocations, fs.recovery_seconds_total,
                  fs.abort_reason.c_str());
    } else if (opt.csv) {
      std::printf("%llu,%s,%.3f,%.3f,%.3f,%d\n",
                  static_cast<unsigned long long>(config_seed),
                  core::algorithm_name(opt.algorithm), r.completion_seconds,
                  r.mean_interarrival_seconds, speedup, r.stats.relocations);
    } else if (faulting) {
      std::printf("%-9llu %9.1f s %11.2f s %7.2fx  %-11d  %-2s  %-6d  %-7llu"
                  "  %d%s%s\n",
                  static_cast<unsigned long long>(config_seed),
                  r.completion_seconds, r.mean_interarrival_seconds, speedup,
                  r.stats.relocations, r.stats.completed ? "y" : "N",
                  fs.faults_injected,
                  static_cast<unsigned long long>(fs.transfer_retries),
                  fs.repair_relocations,
                  fs.abort_reason.empty() ? "" : "  ",
                  fs.abort_reason.c_str());
    } else {
      std::printf("%-9llu %9.1f s %11.2f s %7.2fx  %d\n",
                  static_cast<unsigned long long>(config_seed),
                  r.completion_seconds, r.mean_interarrival_seconds, speedup,
                  r.stats.relocations);
    }
  }

  if (!opt.bench_out_path.empty()) {
    exp::BenchReport report;
    report.name = "wadc_run";
    report.jobs = jobs;
    report.runs = static_cast<long long>(opt.configs) *
                  (opt.with_baseline ? 2 : 1);
    report.wall_seconds = wall_seconds;
    try {
      exp::write_bench_json_file(report, opt.bench_out_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to write bench report: %s\n", e.what());
      exit_code = 2;
    }
  }

  if (const int rc = run_obs.export_all(opt, profiler.get()); rc != 0) {
    exit_code = rc;
  }

  if (!opt.csv && opt.configs > 1) {
    std::printf("\nsummary over %d configurations:\n", opt.configs);
    std::printf("  completion   mean %9.1f s   median %9.1f s\n",
                trace::mean_of(completions), trace::median_of(completions));
    std::printf("  interarrival mean %9.2f s   median %9.2f s\n",
                trace::mean_of(interarrivals),
                trace::median_of(interarrivals));
    if (opt.with_baseline) {
      std::printf("  speedup      mean %9.2fx   median %9.2fx\n",
                  trace::mean_of(speedups), trace::median_of(speedups));
    }
  }
  return exit_code;
}
