# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/when_all_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/core_tree_test[1]_include.cmake")
include("/root/repo/build/tests/core_cost_test[1]_include.cmake")
include("/root/repo/build/tests/core_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/core_directory_test[1]_include.cmake")
include("/root/repo/build/tests/order_planner_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_ablation_test[1]_include.cmake")
include("/root/repo/build/tests/engine_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
