file(REMOVE_RECURSE
  "CMakeFiles/when_all_test.dir/when_all_test.cc.o"
  "CMakeFiles/when_all_test.dir/when_all_test.cc.o.d"
  "when_all_test"
  "when_all_test.pdb"
  "when_all_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/when_all_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
