# Empty compiler generated dependencies file for when_all_test.
# This may be replaced when dependencies are built.
