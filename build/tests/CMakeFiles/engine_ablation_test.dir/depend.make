# Empty dependencies file for engine_ablation_test.
# This may be replaced when dependencies are built.
