file(REMOVE_RECURSE
  "CMakeFiles/engine_ablation_test.dir/engine_ablation_test.cc.o"
  "CMakeFiles/engine_ablation_test.dir/engine_ablation_test.cc.o.d"
  "engine_ablation_test"
  "engine_ablation_test.pdb"
  "engine_ablation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
