# Empty compiler generated dependencies file for core_tree_test.
# This may be replaced when dependencies are built.
