file(REMOVE_RECURSE
  "CMakeFiles/core_tree_test.dir/core_tree_test.cc.o"
  "CMakeFiles/core_tree_test.dir/core_tree_test.cc.o.d"
  "core_tree_test"
  "core_tree_test.pdb"
  "core_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
