
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/order_planner_test.cc" "tests/CMakeFiles/order_planner_test.dir/order_planner_test.cc.o" "gcc" "tests/CMakeFiles/order_planner_test.dir/order_planner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/wadc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/wadc_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wadc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/wadc_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wadc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wadc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wadc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wadc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wadc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
