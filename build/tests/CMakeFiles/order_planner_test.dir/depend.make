# Empty dependencies file for order_planner_test.
# This may be replaced when dependencies are built.
