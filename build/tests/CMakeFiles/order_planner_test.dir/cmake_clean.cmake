file(REMOVE_RECURSE
  "CMakeFiles/order_planner_test.dir/order_planner_test.cc.o"
  "CMakeFiles/order_planner_test.dir/order_planner_test.cc.o.d"
  "order_planner_test"
  "order_planner_test.pdb"
  "order_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
