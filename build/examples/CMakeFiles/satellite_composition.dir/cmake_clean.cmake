file(REMOVE_RECURSE
  "CMakeFiles/satellite_composition.dir/satellite_composition.cpp.o"
  "CMakeFiles/satellite_composition.dir/satellite_composition.cpp.o.d"
  "satellite_composition"
  "satellite_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
