# Empty dependencies file for satellite_composition.
# This may be replaced when dependencies are built.
