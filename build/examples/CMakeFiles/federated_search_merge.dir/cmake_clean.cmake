file(REMOVE_RECURSE
  "CMakeFiles/federated_search_merge.dir/federated_search_merge.cpp.o"
  "CMakeFiles/federated_search_merge.dir/federated_search_merge.cpp.o.d"
  "federated_search_merge"
  "federated_search_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_search_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
