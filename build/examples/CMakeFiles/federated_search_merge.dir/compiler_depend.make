# Empty compiler generated dependencies file for federated_search_merge.
# This may be replaced when dependencies are built.
