file(REMOVE_RECURSE
  "CMakeFiles/distributed_hash_join.dir/distributed_hash_join.cpp.o"
  "CMakeFiles/distributed_hash_join.dir/distributed_hash_join.cpp.o.d"
  "distributed_hash_join"
  "distributed_hash_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_hash_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
