# Empty compiler generated dependencies file for distributed_hash_join.
# This may be replaced when dependencies are built.
