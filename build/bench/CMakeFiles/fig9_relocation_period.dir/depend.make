# Empty dependencies file for fig9_relocation_period.
# This may be replaced when dependencies are built.
