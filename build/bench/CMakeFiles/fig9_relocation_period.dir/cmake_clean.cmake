file(REMOVE_RECURSE
  "CMakeFiles/fig9_relocation_period.dir/fig9_relocation_period.cc.o"
  "CMakeFiles/fig9_relocation_period.dir/fig9_relocation_period.cc.o.d"
  "fig9_relocation_period"
  "fig9_relocation_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_relocation_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
