# Empty compiler generated dependencies file for fig10_tree_shape.
# This may be replaced when dependencies are built.
