# Empty compiler generated dependencies file for analysis_config_convergence.
# This may be replaced when dependencies are built.
