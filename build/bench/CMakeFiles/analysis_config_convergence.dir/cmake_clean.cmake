file(REMOVE_RECURSE
  "CMakeFiles/analysis_config_convergence.dir/analysis_config_convergence.cc.o"
  "CMakeFiles/analysis_config_convergence.dir/analysis_config_convergence.cc.o.d"
  "analysis_config_convergence"
  "analysis_config_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_config_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
