file(REMOVE_RECURSE
  "CMakeFiles/analysis_relocation_traces.dir/analysis_relocation_traces.cc.o"
  "CMakeFiles/analysis_relocation_traces.dir/analysis_relocation_traces.cc.o.d"
  "analysis_relocation_traces"
  "analysis_relocation_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_relocation_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
