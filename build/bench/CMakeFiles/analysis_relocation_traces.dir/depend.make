# Empty dependencies file for analysis_relocation_traces.
# This may be replaced when dependencies are built.
