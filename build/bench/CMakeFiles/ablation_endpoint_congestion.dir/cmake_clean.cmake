file(REMOVE_RECURSE
  "CMakeFiles/ablation_endpoint_congestion.dir/ablation_endpoint_congestion.cc.o"
  "CMakeFiles/ablation_endpoint_congestion.dir/ablation_endpoint_congestion.cc.o.d"
  "ablation_endpoint_congestion"
  "ablation_endpoint_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_endpoint_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
