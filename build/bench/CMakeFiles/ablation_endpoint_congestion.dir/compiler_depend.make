# Empty compiler generated dependencies file for ablation_endpoint_congestion.
# This may be replaced when dependencies are built.
