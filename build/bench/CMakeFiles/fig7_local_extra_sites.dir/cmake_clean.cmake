file(REMOVE_RECURSE
  "CMakeFiles/fig7_local_extra_sites.dir/fig7_local_extra_sites.cc.o"
  "CMakeFiles/fig7_local_extra_sites.dir/fig7_local_extra_sites.cc.o.d"
  "fig7_local_extra_sites"
  "fig7_local_extra_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_local_extra_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
