# Empty compiler generated dependencies file for fig7_local_extra_sites.
# This may be replaced when dependencies are built.
