# Empty dependencies file for fig2_bandwidth_variation.
# This may be replaced when dependencies are built.
