file(REMOVE_RECURSE
  "CMakeFiles/fig2_bandwidth_variation.dir/fig2_bandwidth_variation.cc.o"
  "CMakeFiles/fig2_bandwidth_variation.dir/fig2_bandwidth_variation.cc.o.d"
  "fig2_bandwidth_variation"
  "fig2_bandwidth_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bandwidth_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
