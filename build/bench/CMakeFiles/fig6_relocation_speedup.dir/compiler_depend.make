# Empty compiler generated dependencies file for fig6_relocation_speedup.
# This may be replaced when dependencies are built.
