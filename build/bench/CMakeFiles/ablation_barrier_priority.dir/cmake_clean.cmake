file(REMOVE_RECURSE
  "CMakeFiles/ablation_barrier_priority.dir/ablation_barrier_priority.cc.o"
  "CMakeFiles/ablation_barrier_priority.dir/ablation_barrier_priority.cc.o.d"
  "ablation_barrier_priority"
  "ablation_barrier_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_barrier_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
