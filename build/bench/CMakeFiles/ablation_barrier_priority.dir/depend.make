# Empty dependencies file for ablation_barrier_priority.
# This may be replaced when dependencies are built.
