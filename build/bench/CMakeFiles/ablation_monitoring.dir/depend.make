# Empty dependencies file for ablation_monitoring.
# This may be replaced when dependencies are built.
