file(REMOVE_RECURSE
  "CMakeFiles/fig8_server_scaling.dir/fig8_server_scaling.cc.o"
  "CMakeFiles/fig8_server_scaling.dir/fig8_server_scaling.cc.o.d"
  "fig8_server_scaling"
  "fig8_server_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_server_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
