# Empty compiler generated dependencies file for fig8_server_scaling.
# This may be replaced when dependencies are built.
