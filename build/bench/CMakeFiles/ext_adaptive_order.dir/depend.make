# Empty dependencies file for ext_adaptive_order.
# This may be replaced when dependencies are built.
