file(REMOVE_RECURSE
  "CMakeFiles/ext_adaptive_order.dir/ext_adaptive_order.cc.o"
  "CMakeFiles/ext_adaptive_order.dir/ext_adaptive_order.cc.o.d"
  "ext_adaptive_order"
  "ext_adaptive_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptive_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
