# Empty dependencies file for wadc_monitor.
# This may be replaced when dependencies are built.
