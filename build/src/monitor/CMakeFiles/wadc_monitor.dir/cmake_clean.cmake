file(REMOVE_RECURSE
  "CMakeFiles/wadc_monitor.dir/bandwidth_cache.cc.o"
  "CMakeFiles/wadc_monitor.dir/bandwidth_cache.cc.o.d"
  "CMakeFiles/wadc_monitor.dir/monitoring_system.cc.o"
  "CMakeFiles/wadc_monitor.dir/monitoring_system.cc.o.d"
  "libwadc_monitor.a"
  "libwadc_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
