file(REMOVE_RECURSE
  "libwadc_monitor.a"
)
