
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/bandwidth_cache.cc" "src/monitor/CMakeFiles/wadc_monitor.dir/bandwidth_cache.cc.o" "gcc" "src/monitor/CMakeFiles/wadc_monitor.dir/bandwidth_cache.cc.o.d"
  "/root/repo/src/monitor/monitoring_system.cc" "src/monitor/CMakeFiles/wadc_monitor.dir/monitoring_system.cc.o" "gcc" "src/monitor/CMakeFiles/wadc_monitor.dir/monitoring_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wadc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wadc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wadc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wadc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
