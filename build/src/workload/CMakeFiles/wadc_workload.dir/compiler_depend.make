# Empty compiler generated dependencies file for wadc_workload.
# This may be replaced when dependencies are built.
