file(REMOVE_RECURSE
  "CMakeFiles/wadc_workload.dir/image_workload.cc.o"
  "CMakeFiles/wadc_workload.dir/image_workload.cc.o.d"
  "libwadc_workload.a"
  "libwadc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
