file(REMOVE_RECURSE
  "libwadc_workload.a"
)
