file(REMOVE_RECURSE
  "CMakeFiles/wadc_core.dir/combination_tree.cc.o"
  "CMakeFiles/wadc_core.dir/combination_tree.cc.o.d"
  "CMakeFiles/wadc_core.dir/cost_model.cc.o"
  "CMakeFiles/wadc_core.dir/cost_model.cc.o.d"
  "CMakeFiles/wadc_core.dir/local_rule.cc.o"
  "CMakeFiles/wadc_core.dir/local_rule.cc.o.d"
  "CMakeFiles/wadc_core.dir/one_shot.cc.o"
  "CMakeFiles/wadc_core.dir/one_shot.cc.o.d"
  "CMakeFiles/wadc_core.dir/operator_directory.cc.o"
  "CMakeFiles/wadc_core.dir/operator_directory.cc.o.d"
  "CMakeFiles/wadc_core.dir/order_planner.cc.o"
  "CMakeFiles/wadc_core.dir/order_planner.cc.o.d"
  "CMakeFiles/wadc_core.dir/placement.cc.o"
  "CMakeFiles/wadc_core.dir/placement.cc.o.d"
  "libwadc_core.a"
  "libwadc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
