
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/combination_tree.cc" "src/core/CMakeFiles/wadc_core.dir/combination_tree.cc.o" "gcc" "src/core/CMakeFiles/wadc_core.dir/combination_tree.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/wadc_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/wadc_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/local_rule.cc" "src/core/CMakeFiles/wadc_core.dir/local_rule.cc.o" "gcc" "src/core/CMakeFiles/wadc_core.dir/local_rule.cc.o.d"
  "/root/repo/src/core/one_shot.cc" "src/core/CMakeFiles/wadc_core.dir/one_shot.cc.o" "gcc" "src/core/CMakeFiles/wadc_core.dir/one_shot.cc.o.d"
  "/root/repo/src/core/operator_directory.cc" "src/core/CMakeFiles/wadc_core.dir/operator_directory.cc.o" "gcc" "src/core/CMakeFiles/wadc_core.dir/operator_directory.cc.o.d"
  "/root/repo/src/core/order_planner.cc" "src/core/CMakeFiles/wadc_core.dir/order_planner.cc.o" "gcc" "src/core/CMakeFiles/wadc_core.dir/order_planner.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/wadc_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/wadc_core.dir/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wadc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wadc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/wadc_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wadc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wadc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
