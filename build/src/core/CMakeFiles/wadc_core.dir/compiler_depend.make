# Empty compiler generated dependencies file for wadc_core.
# This may be replaced when dependencies are built.
