file(REMOVE_RECURSE
  "libwadc_core.a"
)
