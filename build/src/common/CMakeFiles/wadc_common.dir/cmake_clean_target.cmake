file(REMOVE_RECURSE
  "libwadc_common.a"
)
