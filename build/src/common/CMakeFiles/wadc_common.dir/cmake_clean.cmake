file(REMOVE_RECURSE
  "CMakeFiles/wadc_common.dir/assert.cc.o"
  "CMakeFiles/wadc_common.dir/assert.cc.o.d"
  "CMakeFiles/wadc_common.dir/rng.cc.o"
  "CMakeFiles/wadc_common.dir/rng.cc.o.d"
  "libwadc_common.a"
  "libwadc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
