# Empty dependencies file for wadc_common.
# This may be replaced when dependencies are built.
