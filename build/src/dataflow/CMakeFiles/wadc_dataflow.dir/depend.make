# Empty dependencies file for wadc_dataflow.
# This may be replaced when dependencies are built.
