file(REMOVE_RECURSE
  "CMakeFiles/wadc_dataflow.dir/engine.cc.o"
  "CMakeFiles/wadc_dataflow.dir/engine.cc.o.d"
  "libwadc_dataflow.a"
  "libwadc_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
