file(REMOVE_RECURSE
  "libwadc_dataflow.a"
)
