file(REMOVE_RECURSE
  "libwadc_net.a"
)
