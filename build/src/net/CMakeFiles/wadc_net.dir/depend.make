# Empty dependencies file for wadc_net.
# This may be replaced when dependencies are built.
