file(REMOVE_RECURSE
  "CMakeFiles/wadc_net.dir/link_table.cc.o"
  "CMakeFiles/wadc_net.dir/link_table.cc.o.d"
  "CMakeFiles/wadc_net.dir/network.cc.o"
  "CMakeFiles/wadc_net.dir/network.cc.o.d"
  "libwadc_net.a"
  "libwadc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
