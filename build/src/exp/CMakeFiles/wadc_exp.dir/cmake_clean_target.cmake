file(REMOVE_RECURSE
  "libwadc_exp.a"
)
