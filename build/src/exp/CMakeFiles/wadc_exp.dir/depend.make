# Empty dependencies file for wadc_exp.
# This may be replaced when dependencies are built.
