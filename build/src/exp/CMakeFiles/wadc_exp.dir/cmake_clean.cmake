file(REMOVE_RECURSE
  "CMakeFiles/wadc_exp.dir/experiment.cc.o"
  "CMakeFiles/wadc_exp.dir/experiment.cc.o.d"
  "CMakeFiles/wadc_exp.dir/export.cc.o"
  "CMakeFiles/wadc_exp.dir/export.cc.o.d"
  "CMakeFiles/wadc_exp.dir/network_config.cc.o"
  "CMakeFiles/wadc_exp.dir/network_config.cc.o.d"
  "CMakeFiles/wadc_exp.dir/report.cc.o"
  "CMakeFiles/wadc_exp.dir/report.cc.o.d"
  "libwadc_exp.a"
  "libwadc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
