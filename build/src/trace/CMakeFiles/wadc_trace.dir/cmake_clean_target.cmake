file(REMOVE_RECURSE
  "libwadc_trace.a"
)
