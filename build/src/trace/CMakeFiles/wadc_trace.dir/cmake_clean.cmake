file(REMOVE_RECURSE
  "CMakeFiles/wadc_trace.dir/bandwidth_trace.cc.o"
  "CMakeFiles/wadc_trace.dir/bandwidth_trace.cc.o.d"
  "CMakeFiles/wadc_trace.dir/generator.cc.o"
  "CMakeFiles/wadc_trace.dir/generator.cc.o.d"
  "CMakeFiles/wadc_trace.dir/io.cc.o"
  "CMakeFiles/wadc_trace.dir/io.cc.o.d"
  "CMakeFiles/wadc_trace.dir/library.cc.o"
  "CMakeFiles/wadc_trace.dir/library.cc.o.d"
  "CMakeFiles/wadc_trace.dir/stats.cc.o"
  "CMakeFiles/wadc_trace.dir/stats.cc.o.d"
  "libwadc_trace.a"
  "libwadc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
