# Empty compiler generated dependencies file for wadc_trace.
# This may be replaced when dependencies are built.
