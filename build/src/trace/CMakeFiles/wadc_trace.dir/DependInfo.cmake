
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/bandwidth_trace.cc" "src/trace/CMakeFiles/wadc_trace.dir/bandwidth_trace.cc.o" "gcc" "src/trace/CMakeFiles/wadc_trace.dir/bandwidth_trace.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/trace/CMakeFiles/wadc_trace.dir/generator.cc.o" "gcc" "src/trace/CMakeFiles/wadc_trace.dir/generator.cc.o.d"
  "/root/repo/src/trace/io.cc" "src/trace/CMakeFiles/wadc_trace.dir/io.cc.o" "gcc" "src/trace/CMakeFiles/wadc_trace.dir/io.cc.o.d"
  "/root/repo/src/trace/library.cc" "src/trace/CMakeFiles/wadc_trace.dir/library.cc.o" "gcc" "src/trace/CMakeFiles/wadc_trace.dir/library.cc.o.d"
  "/root/repo/src/trace/stats.cc" "src/trace/CMakeFiles/wadc_trace.dir/stats.cc.o" "gcc" "src/trace/CMakeFiles/wadc_trace.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wadc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wadc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
