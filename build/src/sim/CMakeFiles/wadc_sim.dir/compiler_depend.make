# Empty compiler generated dependencies file for wadc_sim.
# This may be replaced when dependencies are built.
