file(REMOVE_RECURSE
  "CMakeFiles/wadc_sim.dir/event_queue.cc.o"
  "CMakeFiles/wadc_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/wadc_sim.dir/simulation.cc.o"
  "CMakeFiles/wadc_sim.dir/simulation.cc.o.d"
  "libwadc_sim.a"
  "libwadc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
