file(REMOVE_RECURSE
  "libwadc_sim.a"
)
