file(REMOVE_RECURSE
  "CMakeFiles/wadc_run.dir/wadc_run.cc.o"
  "CMakeFiles/wadc_run.dir/wadc_run.cc.o.d"
  "wadc_run"
  "wadc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
