# Empty compiler generated dependencies file for wadc_run.
# This may be replaced when dependencies are built.
