file(REMOVE_RECURSE
  "CMakeFiles/wadc_report.dir/wadc_report.cc.o"
  "CMakeFiles/wadc_report.dir/wadc_report.cc.o.d"
  "wadc_report"
  "wadc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wadc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
