# Empty compiler generated dependencies file for wadc_report.
# This may be replaced when dependencies are built.
